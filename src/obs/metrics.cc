#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/env.h"
#include "support/error.h"
#include "support/log.h"

namespace bitspec
{

namespace
{

/** Canonical instrument key: name{k=v,k=v} with labels sorted. */
std::string
keyOf(const std::string &name, const MetricsRegistry::Labels &labels)
{
    if (labels.empty())
        return name;
    MetricsRegistry::Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string key = name + "{";
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            key += ",";
        key += sorted[i].first + "=" + sorted[i].second;
    }
    key += "}";
    return key;
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

std::string
fmtNum(double v)
{
    char buf[48];
    // Integral values print without a fraction so counters read
    // naturally in both sinks.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    return buf;
}

/** Reads BITSPEC_METRICS once at static-init time and registers the
 *  at-exit export of the global registry as JSON lines (the trace
 *  sink's BITSPEC_TRACE twin). */
struct EnvInit
{
    EnvInit()
    {
        std::string path = env::getString("BITSPEC_METRICS");
        if (path.empty())
            return;
        static std::string s_path;
        s_path = path;
        // Construct the singleton *before* registering the handler:
        // its destructor then outlives the export (atexit runs in
        // reverse registration order).
        MetricsRegistry::global();
        std::atexit([] {
            std::ofstream os(s_path);
            if (!os) {
                log::error("BITSPEC_METRICS: cannot write %s",
                           s_path.c_str());
                return;
            }
            MetricsRegistry::global().writeJsonLines(os);
            log::info("BITSPEC_METRICS: wrote %s", s_path.c_str());
        });
    }
};

EnvInit g_envInit;

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry r;
    return r;
}

MetricsRegistry::Instrument &
MetricsRegistry::get(const std::string &name, const Labels &labels,
                     MetricSample::Kind kind)
{
    const std::string key = keyOf(name, labels);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = instruments_.find(key);
    if (it != instruments_.end()) {
        bsAssert(it->second.kind == kind,
                 "metric re-registered with a different kind: " + key);
        return it->second;
    }
    Instrument inst;
    inst.name = name;
    inst.labels = labels;
    std::sort(inst.labels.begin(), inst.labels.end());
    inst.kind = kind;
    switch (kind) {
      case MetricSample::Kind::Counter:
        inst.counter = std::make_unique<Counter>();
        break;
      case MetricSample::Kind::Gauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case MetricSample::Kind::Histogram:
        inst.histogram = std::make_unique<HistogramMetric>();
        break;
    }
    return instruments_.emplace(key, std::move(inst)).first->second;
}

Counter &
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    return *get(name, labels, MetricSample::Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    return *get(name, labels, MetricSample::Kind::Gauge).gauge;
}

HistogramMetric &
MetricsRegistry::histogram(const std::string &name, const Labels &labels)
{
    return *get(name, labels, MetricSample::Kind::Histogram).histogram;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MetricSample> out;
    out.reserve(instruments_.size());
    for (const auto &[key, inst] : instruments_) {
        MetricSample s;
        s.name = inst.name;
        s.labels = inst.labels;
        s.kind = inst.kind;
        switch (inst.kind) {
          case MetricSample::Kind::Counter:
            s.value = static_cast<double>(inst.counter->value());
            break;
          case MetricSample::Kind::Gauge:
            s.value = inst.gauge->value();
            break;
          case MetricSample::Kind::Histogram:
            s.histogram = inst.histogram->snapshotValues();
            s.value = s.histogram.sum();
            break;
        }
        out.push_back(std::move(s));
    }
    // Sort by (name, labels), NOT by map key: the key embeds labels as
    // "name{k=v}" and '{' compares above '.', so "foo{a=1}" would sort
    // after "foo.bar" — splitting a metric family apart in the output.
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return a.labels < b.labels;
              });
    return out;
}

void
MetricsRegistry::writeJsonLines(std::ostream &os) const
{
    for (const MetricSample &s : snapshot()) {
        os << "{\"name\":\"";
        jsonEscape(os, s.name);
        os << "\"";
        if (!s.labels.empty()) {
            os << ",\"labels\":{";
            for (size_t i = 0; i < s.labels.size(); ++i) {
                if (i)
                    os << ",";
                os << "\"";
                jsonEscape(os, s.labels[i].first);
                os << "\":\"";
                jsonEscape(os, s.labels[i].second);
                os << "\"";
            }
            os << "}";
        }
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            os << ",\"kind\":\"counter\",\"value\":" << fmtNum(s.value);
            break;
          case MetricSample::Kind::Gauge:
            os << ",\"kind\":\"gauge\",\"value\":" << fmtNum(s.value);
            break;
          case MetricSample::Kind::Histogram:
            os << ",\"kind\":\"histogram\",\"count\":"
               << s.histogram.count()
               << ",\"sum\":" << fmtNum(s.histogram.sum())
               << ",\"min\":" << fmtNum(s.histogram.min())
               << ",\"mean\":" << fmtNum(s.histogram.mean())
               << ",\"p50\":" << fmtNum(s.histogram.p50())
               << ",\"p95\":" << fmtNum(s.histogram.p95())
               << ",\"p99\":" << fmtNum(s.histogram.p99())
               << ",\"max\":" << fmtNum(s.histogram.max());
            break;
        }
        os << "}\n";
    }
}

void
MetricsRegistry::writeTable(std::ostream &os) const
{
    std::vector<MetricSample> samples = snapshot();
    size_t width = 8;
    std::vector<std::string> keys;
    keys.reserve(samples.size());
    for (const MetricSample &s : samples) {
        std::string key = s.name;
        if (!s.labels.empty()) {
            key += "{";
            for (size_t i = 0; i < s.labels.size(); ++i) {
                if (i)
                    key += ",";
                key += s.labels[i].first + "=" + s.labels[i].second;
            }
            key += "}";
        }
        width = std::max(width, key.size());
        keys.push_back(std::move(key));
    }
    for (size_t i = 0; i < samples.size(); ++i) {
        const MetricSample &s = samples[i];
        os << keys[i] << std::string(width - keys[i].size() + 2, ' ');
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            os << fmtNum(s.value) << "\n";
            break;
          case MetricSample::Kind::Gauge:
            os << fmtNum(s.value) << "\n";
            break;
          case MetricSample::Kind::Histogram:
            os << "count=" << s.histogram.count()
               << " mean=" << fmtNum(s.histogram.mean())
               << " p50=" << fmtNum(s.histogram.p50())
               << " p95=" << fmtNum(s.histogram.p95())
               << " p99=" << fmtNum(s.histogram.p99())
               << " max=" << fmtNum(s.histogram.max()) << "\n";
            break;
        }
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    instruments_.clear();
}

} // namespace bitspec
