#include "obs/profiler.h"

#include <algorithm>

#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

BlockMap::BlockMap(const MachProgram &prog)
{
    info_.resize(prog.flat.size());

    for (const MachFunction &mf : prog.funcs) {
        const uint32_t base = prog.indexOf(mf.baseAddr);
        const uint32_t spec_insts = mf.delta / kInstBytes;

        // Recover each block's emitted [start, end) range from
        // blockIndex, exactly as AttributionMap does: ranges are
        // delimited by the next-larger start, and speculative-area
        // (member) blocks are clamped to the speculative area because
        // their Eq. 1/2 skeleton slots sit between them and the next
        // laid-out block.
        std::vector<std::pair<uint32_t, int>> starts; // (index, block)
        starts.reserve(mf.blockIndex.size());
        for (const auto &[block_id, start] : mf.blockIndex)
            starts.emplace_back(start, block_id);
        std::sort(starts.begin(), starts.end());

        for (size_t k = 0; k < starts.size(); ++k) {
            const auto [start, block_id] = starts[k];
            const MachBlock &mb =
                mf.blocks[static_cast<size_t>(block_id)];
            uint32_t end = k + 1 < starts.size()
                               ? starts[k + 1].first
                               : static_cast<uint32_t>(mf.code.size());
            const bool member = !mb.isHandler && mb.handlerBlock >= 0;
            if (member)
                end = std::min(end, spec_insts);

            BlockSite site;
            site.function = mf.name;
            site.block = mb.name;
            site.blockId = mb.id;
            site.regionId = mb.regionId;
            site.srcLine = mb.regionSrcLine;
            site.isHandler = mb.isHandler;
            site.startIndex = base + start;
            site.staticInsts =
                end > start ? (end - start) * (member ? 2 : 1) : 0;
            sites_.push_back(std::move(site));
            const auto s = static_cast<int32_t>(sites_.size() - 1);

            for (uint32_t j = start; j < end; ++j) {
                IndexInfo &ii = info_[base + j];
                ii.site = s;
                ii.head = j == start;
                if (member) {
                    // The skeleton slot of member instruction j sits
                    // at j + Delta/4; fold it into the member block.
                    IndexInfo &sk = info_[base + spec_insts + j];
                    sk.site = s;
                    sk.head = false;
                }
            }
        }
    }

    // Everything not claimed by a function block is the linker's
    // _start stub (one synthetic site completes the partition).
    int32_t stub = -1;
    for (size_t i = 0; i < info_.size(); ++i) {
        if (info_[i].site >= 0)
            continue;
        if (stub < 0) {
            BlockSite site;
            site.function = "_start";
            site.block = "_start";
            site.startIndex = static_cast<uint32_t>(i);
            sites_.push_back(std::move(site));
            stub = static_cast<int32_t>(sites_.size() - 1);
            info_[i].head = true;
        }
        info_[i].site = stub;
        ++sites_[static_cast<size_t>(stub)].staticInsts;
    }
}

uint64_t
BlockProfilerSink::totalInsts() const
{
    uint64_t n = unattributed_;
    for (const BlockActivity &a : activity_)
        n += a.insts;
    return n;
}

uint64_t
BlockProfilerSink::totalCycles() const
{
    uint64_t n = 0;
    for (const BlockActivity &a : activity_)
        n += a.cycles;
    return n;
}

uint64_t
BlockProfilerSink::totalMisspecs() const
{
    uint64_t n = 0;
    for (const BlockActivity &a : activity_)
        n += a.misspecs;
    return n;
}

std::vector<HeatRow>
buildHeatReport(const BlockMap &map, const BlockProfilerSink &sink,
                const HeatReportInputs &inputs)
{
    const auto &sites = map.sites();
    const auto &activity = sink.activity();
    bsAssert(sites.size() == activity.size(),
             "heat report: sink built from a different map");

    const uint64_t tot_insts = sink.totalInsts();
    const uint64_t tot_cycles = sink.totalCycles();
    const uint64_t tot_misspecs = sink.totalMisspecs();

    // Exact energy split: the cycle-proportional pipeline cost and the
    // per-misspec recovery cost are attributed directly; every other
    // event energy (ALU, RF, caches) is apportioned by retired
    // instructions. The three parts sum back to totalEnergyPj.
    const double remainder =
        inputs.totalEnergyPj -
        inputs.energy.pipelinePerCycle *
            static_cast<double>(tot_cycles) -
        inputs.energy.misspecRecovery *
            static_cast<double>(tot_misspecs);

    std::vector<HeatRow> rows;
    rows.reserve(sites.size());
    for (size_t i = 0; i < sites.size(); ++i) {
        HeatRow row;
        row.site = sites[i];
        row.activity = activity[i];
        row.cyclesPct =
            tot_cycles ? 100.0 *
                             static_cast<double>(row.activity.cycles) /
                             static_cast<double>(tot_cycles)
                       : 0.0;
        row.ipc = row.activity.cycles
                      ? static_cast<double>(row.activity.insts) /
                            static_cast<double>(row.activity.cycles)
                      : 0.0;
        if (inputs.totalEnergyPj > 0) {
            row.energyPj =
                inputs.energy.pipelinePerCycle *
                    static_cast<double>(row.activity.cycles) +
                inputs.energy.misspecRecovery *
                    static_cast<double>(row.activity.misspecs) +
                (tot_insts
                     ? remainder *
                           (static_cast<double>(row.activity.insts) /
                            static_cast<double>(tot_insts))
                     : 0.0);
        }
        rows.push_back(std::move(row));
    }

    std::sort(rows.begin(), rows.end(),
              [](const HeatRow &a, const HeatRow &b) {
                  if (a.activity.cycles != b.activity.cycles)
                      return a.activity.cycles > b.activity.cycles;
                  if (a.activity.insts != b.activity.insts)
                      return a.activity.insts > b.activity.insts;
                  return a.site.startIndex < b.site.startIndex;
              });
    return rows;
}

std::string
formatHeatListing(const std::vector<HeatRow> &rows,
                  const std::string &source_file, size_t top_n)
{
    std::string out = strFormat(
        "%4s %-30s %-16s %-8s %10s %12s %12s %6s %6s %11s %9s\n", "#",
        "block", "site", "kind", "entries", "insts", "cycles", "cyc%",
        "ipc", "energy_pJ", "misspecs");
    size_t shown = 0;
    for (const HeatRow &r : rows) {
        if (shown >= top_n || r.activity.insts == 0)
            break;
        std::string block = strFormat(
            "%s:%s", r.site.function.c_str(), r.site.block.c_str());
        std::string site =
            r.site.srcLine > 0
                ? strFormat("%s:%d", source_file.c_str(),
                            r.site.srcLine)
                : "-";
        const char *kind = r.site.isHandler     ? "handler"
                           : r.site.regionId >= 0 ? "region"
                                                  : "plain";
        out += strFormat(
            "%4zu %-30s %-16s %-8s %10llu %12llu %12llu %6.2f %6.2f "
            "%11.1f %9llu\n",
            shown + 1, block.c_str(), site.c_str(), kind,
            static_cast<unsigned long long>(r.activity.entries),
            static_cast<unsigned long long>(r.activity.insts),
            static_cast<unsigned long long>(r.activity.cycles),
            r.cyclesPct, r.ipc, r.energyPj,
            static_cast<unsigned long long>(r.activity.misspecs));
        ++shown;
    }
    return out;
}

std::string
foldedStacks(const std::vector<HeatRow> &rows,
             const std::string &source_file)
{
    std::string out;
    for (const HeatRow &r : rows) {
        if (r.activity.cycles == 0)
            continue;
        std::string leaf =
            r.site.isHandler ? r.site.block + "_(handler)"
                             : r.site.block;
        std::string mid =
            r.site.regionId >= 0
                ? strFormat("%s#region%d", r.site.function.c_str(),
                            r.site.regionId)
                : r.site.function;
        std::string root =
            r.site.srcLine > 0
                ? strFormat("%s:%d", source_file.c_str(),
                            r.site.srcLine)
                : source_file;
        out += strFormat("%s;%s;%s %llu\n", root.c_str(), mid.c_str(),
                         leaf.c_str(),
                         static_cast<unsigned long long>(
                             r.activity.cycles));
    }
    return out;
}

void
CounterTrackEmitter::finish(const ActivityCounters &c,
                            const MemoryHierarchy &mem, uint64_t cycle)
{
    if (c.instructions > lastInsts_ || cycle > lastCycle_)
        sample(c, mem, cycle);
}

void
CounterTrackEmitter::sample(const ActivityCounters &c,
                            const MemoryHierarchy &mem, uint64_t cycle)
{
    const uint64_t d_insts = c.instructions - lastInsts_;
    const uint64_t d_cycles = cycle - lastCycle_;
    const uint64_t d_misspecs = c.misspeculations - lastMisspecs_;
    const CacheStats &l1d = mem.l1d();
    const uint64_t d_acc = l1d.accesses - lastL1dAccesses_;
    const uint64_t d_miss = l1d.misses - lastL1dMisses_;

    if (trace::enabled()) {
        trace::counter("core.ipc", "counter",
                       d_cycles ? static_cast<double>(d_insts) /
                                      static_cast<double>(d_cycles)
                                : 0.0);
        trace::counter("core.misspec_per_kinst", "counter",
                       d_insts ? 1000.0 *
                                     static_cast<double>(d_misspecs) /
                                     static_cast<double>(d_insts)
                               : 0.0);
        trace::counter("core.l1d_hit_pct", "counter",
                       d_acc ? 100.0 *
                                   static_cast<double>(d_acc - d_miss) /
                                   static_cast<double>(d_acc)
                             : 100.0);
        ++samples_;
    }

    lastInsts_ = c.instructions;
    lastCycle_ = cycle;
    lastMisspecs_ = c.misspeculations;
    lastL1dAccesses_ = l1d.accesses;
    lastL1dMisses_ = l1d.misses;
}

} // namespace bitspec
