#include "obs/ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "support/env.h"
#include "support/log.h"

extern char **environ;

namespace bitspec
{

namespace
{

void
jsonEscape(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

/** %.17g: enough digits that parse(fmtNum(v)) == v bit-for-bit, which
 *  the validator's exact-reconciliation checks rely on. */
std::string
fmtNum(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::optional<double>
numberAfter(const std::string &text, const std::string &key,
            size_t from = 0)
{
    size_t at = text.find("\"" + key + "\":", from);
    if (at == std::string::npos)
        return std::nullopt;
    const char *p = text.c_str() + at + key.size() + 3;
    char *end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p)
        return std::nullopt;
    return v;
}

/** Like numberAfter but full 64-bit exact (seeds, event counts). */
std::optional<uint64_t>
u64After(const std::string &text, const std::string &key,
         size_t from = 0)
{
    size_t at = text.find("\"" + key + "\":", from);
    if (at == std::string::npos)
        return std::nullopt;
    const char *p = text.c_str() + at + key.size() + 3;
    char *end = nullptr;
    uint64_t v = std::strtoull(p, &end, 10);
    if (end == p)
        return std::nullopt;
    return v;
}

std::optional<std::string>
stringAfter(const std::string &text, const std::string &key,
            size_t from = 0)
{
    size_t at = text.find("\"" + key + "\":", from);
    if (at == std::string::npos)
        return std::nullopt;
    size_t open = text.find('"', at + key.size() + 3);
    if (open == std::string::npos)
        return std::nullopt;
    std::string out;
    for (size_t i = open + 1; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\' && i + 1 < text.size()) {
            out += text[++i];
            continue;
        }
        if (c == '"')
            return out;
        out += c;
    }
    return std::nullopt;
}

/** Index of the `}` matching the `{` at @p open, skipping over string
 *  contents; npos when unbalanced (torn line). */
size_t
matchBrace(const std::string &s, size_t open)
{
    int depth = 0;
    bool in_string = false;
    for (size_t i = open; i < s.size(); ++i) {
        char c = s[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++depth;
        else if (c == '}' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

void
appendStr(std::string &out, const char *key, const std::string &v)
{
    out += ",\"";
    out += key;
    out += "\":\"";
    jsonEscape(out, v);
    out += "\"";
}

void
appendU64(std::string &out, const char *key, uint64_t v)
{
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(v);
}

} // namespace

std::optional<double>
LedgerRecord::field(const std::string &name) const
{
    for (const LedgerField &f : fields)
        if (f.name == name)
            return f.value;
    return std::nullopt;
}

void
LedgerRecord::setField(const std::string &name, double value)
{
    for (LedgerField &f : fields)
        if (f.name == name) {
            f.value = value;
            return;
        }
    fields.push_back({name, value});
}

void
fillRunTelemetry(LedgerRecord &rec, const ActivityCounters &c,
                 const CacheStats &l1i, const CacheStats &l1d,
                 const CacheStats &l2, const DramStats &dram,
                 const EnergyBreakdown &energy, double total_pj,
                 double epi_pj, double mean_v, uint32_t return_value,
                 uint64_t output_checksum, double wall_sec)
{
    auto u = [&rec](const char *name, uint64_t v) {
        rec.setField(name, static_cast<double>(v));
    };
    u("counters.instructions", c.instructions);
    u("counters.cycles", c.cycles);
    u("counters.alu32", c.alu32);
    u("counters.alu8", c.alu8);
    u("counters.mul_div", c.mulDiv);
    u("counters.rf_read32", c.rfRead32);
    u("counters.rf_write32", c.rfWrite32);
    u("counters.rf_read8", c.rfRead8);
    u("counters.rf_write8", c.rfWrite8);
    u("counters.loads", c.loads);
    u("counters.stores", c.stores);
    u("counters.branches", c.branches);
    u("counters.taken_branches", c.takenBranches);
    u("counters.calls", c.calls);
    u("counters.misspeculations", c.misspeculations);
    u("counters.dyn_spill_loads", c.dynSpillLoads);
    u("counters.dyn_spill_stores", c.dynSpillStores);
    u("counters.dyn_copies", c.dynCopies);
    u("counters.outputs", c.outputs);

    u("cache.l1i.accesses", l1i.accesses);
    u("cache.l1i.misses", l1i.misses);
    u("cache.l1i.writebacks", l1i.writebacks);
    u("cache.l1d.accesses", l1d.accesses);
    u("cache.l1d.misses", l1d.misses);
    u("cache.l1d.writebacks", l1d.writebacks);
    u("cache.l2.accesses", l2.accesses);
    u("cache.l2.misses", l2.misses);
    u("cache.l2.writebacks", l2.writebacks);
    u("dram.reads", dram.reads);
    u("dram.writes", dram.writes);

    rec.setField("energy.alu_pj", energy.alu);
    rec.setField("energy.regfile_pj", energy.regfile);
    rec.setField("energy.dcache_pj", energy.dcache);
    rec.setField("energy.icache_pj", energy.icache);
    rec.setField("energy.pipeline_pj", energy.pipeline);
    rec.setField("energy.model_pj", energy.total());
    rec.setField("energy.total_pj", total_pj);
    rec.setField("energy.epi_pj", epi_pj);
    rec.setField("energy.mean_v", mean_v);

    rec.setField("run.return", return_value);
    rec.setField("run.wall_sec", wall_sec);

    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(output_checksum));
    rec.outputChecksum = hex;
}

std::vector<std::pair<std::string, std::string>>
captureBitspecEnv()
{
    std::vector<std::pair<std::string, std::string>> out;
    for (char **e = environ; e && *e; ++e) {
        const char *entry = *e;
        if (std::strncmp(entry, "BITSPEC_", 8) != 0)
            continue;
        const char *eq = std::strchr(entry, '=');
        if (!eq)
            continue;
        out.emplace_back(std::string(entry, eq - entry),
                         std::string(eq + 1));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
toJsonLine(const LedgerRecord &rec)
{
    std::string out = "{\"schema_version\":" +
                      std::to_string(rec.schemaVersion) +
                      ",\"kind\":\"";
    jsonEscape(out, rec.kind);
    out += "\"";
    appendStr(out, "flavour", rec.flavour);
    appendStr(out, "bench", rec.bench);
    appendStr(out, "workload", rec.workload);
    appendStr(out, "cell_key", rec.cellKey);
    appendStr(out, "system_key", rec.systemKey);
    appendStr(out, "artifact_key", rec.artifactKey);
    appendStr(out, "cache_source", rec.cacheSource);
    appendStr(out, "engine", rec.engine);
    appendStr(out, "policy", rec.policy);
    appendU64(out, "profile_seed", rec.profileSeed);
    appendU64(out, "run_seed", rec.runSeed);
    appendU64(out, "policy_seed", rec.policySeed);
    appendStr(out, "output_checksum", rec.outputChecksum);

    std::vector<std::pair<std::string, std::string>> env = rec.env;
    std::sort(env.begin(), env.end());
    out += ",\"env\":{";
    for (size_t i = 0; i < env.size(); ++i) {
        if (i)
            out += ",";
        out += "\"";
        jsonEscape(out, env[i].first);
        out += "\":\"";
        jsonEscape(out, env[i].second);
        out += "\"";
    }
    out += "}";

    std::vector<LedgerField> fields = rec.fields;
    std::sort(fields.begin(), fields.end(),
              [](const LedgerField &a, const LedgerField &b) {
                  return a.name < b.name;
              });
    out += ",\"fields\":{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ",";
        out += "\"";
        jsonEscape(out, fields[i].name);
        out += "\":" + fmtNum(fields[i].value);
    }
    out += "}";

    out += ",\"regions\":[";
    for (size_t i = 0; i < rec.regions.size(); ++i) {
        const LedgerRegionRow &r = rec.regions[i];
        if (i)
            out += ",";
        out += "{\"function\":\"";
        jsonEscape(out, r.function);
        out += "\"";
        appendU64(out, "region", static_cast<uint64_t>(
                                     r.regionId < 0 ? 0 : r.regionId));
        appendU64(out, "line",
                  static_cast<uint64_t>(r.srcLine < 0 ? 0 : r.srcLine));
        appendU64(out, "entries", r.entries);
        appendU64(out, "misspecs", r.misspecs);
        appendU64(out, "spec_insts", r.specInsts);
        appendU64(out, "handler_insts", r.handlerInsts);
        appendU64(out, "handler_cycles", r.handlerCycles);
        out += "}";
    }
    out += "]";

    out += ",\"heat\":[";
    for (size_t i = 0; i < rec.heat.size(); ++i) {
        const LedgerHeatRow &h = rec.heat[i];
        if (i)
            out += ",";
        out += "{\"function\":\"";
        jsonEscape(out, h.function);
        out += "\",\"block\":\"";
        jsonEscape(out, h.block);
        out += "\"";
        appendU64(out, "region", static_cast<uint64_t>(
                                     h.regionId < 0 ? 0 : h.regionId));
        appendU64(out, "line",
                  static_cast<uint64_t>(h.srcLine < 0 ? 0 : h.srcLine));
        appendU64(out, "entries", h.entries);
        appendU64(out, "insts", h.insts);
        appendU64(out, "cycles", h.cycles);
        appendU64(out, "misspecs", h.misspecs);
        out += "}";
    }
    out += "]}";
    return out;
}

namespace
{

/** Parse the `"name":{...}` object of string values at/after @p key
 *  into @p out. */
void
parseStringObject(
    const std::string &line, const char *key,
    std::vector<std::pair<std::string, std::string>> &out)
{
    const std::string marker = std::string("\"") + key + "\":{";
    size_t at = line.find(marker);
    if (at == std::string::npos)
        return;
    size_t i = at + marker.size();
    while (i < line.size() && line[i] != '}') {
        if (line[i] == ',' || line[i] == ' ') {
            ++i;
            continue;
        }
        if (line[i] != '"')
            break;
        size_t name_end = line.find('"', i + 1);
        if (name_end == std::string::npos)
            break;
        std::string name = line.substr(i + 1, name_end - i - 1);
        size_t colon = line.find(':', name_end);
        if (colon == std::string::npos)
            break;
        size_t open = line.find('"', colon);
        if (open == std::string::npos)
            break;
        std::string value;
        size_t j = open + 1;
        for (; j < line.size(); ++j) {
            char c = line[j];
            if (c == '\\' && j + 1 < line.size()) {
                value += line[++j];
                continue;
            }
            if (c == '"')
                break;
            value += c;
        }
        if (j >= line.size())
            break; // Torn inside the value.
        out.emplace_back(std::move(name), std::move(value));
        i = j + 1;
    }
}

/** Iterate the `{...}` chunks of the `"name":[...]` array at/after
 *  @p key, invoking @p fn with each chunk substring. */
template <typename Fn>
void
forEachArrayChunk(const std::string &line, const char *key, Fn fn)
{
    const std::string marker = std::string("\"") + key + "\":[";
    size_t at = line.find(marker);
    if (at == std::string::npos)
        return;
    size_t i = at + marker.size();
    while (i < line.size()) {
        size_t open = line.find('{', i);
        size_t end = line.find(']', i);
        if (open == std::string::npos ||
            (end != std::string::npos && end < open))
            break;
        size_t close = matchBrace(line, open);
        if (close == std::string::npos)
            break;
        fn(line.substr(open, close - open + 1));
        i = close + 1;
    }
}

} // namespace

std::optional<LedgerRecord>
parseLedgerLine(const std::string &line)
{
    if (line.find_first_not_of(" \t\r\n") == std::string::npos)
        return std::nullopt;
    auto schema = numberAfter(line, "schema_version");
    if (!schema || static_cast<int>(*schema) < 1 ||
        static_cast<int>(*schema) > kLedgerSchemaVersion)
        return std::nullopt;
    // A whole record is one line; a torn tail cannot close the final
    // bracket, so this cheaply rejects partial crash-time writes.
    if (line.find('}') == std::string::npos)
        return std::nullopt;

    LedgerRecord rec;
    rec.schemaVersion = static_cast<int>(*schema);
    rec.kind = stringAfter(line, "kind").value_or("cell");
    rec.flavour = stringAfter(line, "flavour").value_or("");
    rec.bench = stringAfter(line, "bench").value_or("");
    rec.workload = stringAfter(line, "workload").value_or("");
    rec.cellKey = stringAfter(line, "cell_key").value_or("");
    rec.systemKey = stringAfter(line, "system_key").value_or("");
    rec.artifactKey = stringAfter(line, "artifact_key").value_or("");
    rec.cacheSource = stringAfter(line, "cache_source").value_or("");
    rec.engine = stringAfter(line, "engine").value_or("");
    rec.policy = stringAfter(line, "policy").value_or("");
    rec.profileSeed = u64After(line, "profile_seed").value_or(0);
    rec.runSeed = u64After(line, "run_seed").value_or(0);
    rec.policySeed = u64After(line, "policy_seed").value_or(0);
    rec.outputChecksum =
        stringAfter(line, "output_checksum").value_or("");

    parseStringObject(line, "env", rec.env);

    // Flat fields object: same scan as obs/trajectory's series map.
    size_t at = line.find("\"fields\":{");
    if (at == std::string::npos)
        return std::nullopt;
    size_t i = at + std::strlen("\"fields\":{");
    while (i < line.size() && line[i] != '}') {
        size_t open = line.find('"', i);
        if (open == std::string::npos)
            break;
        size_t close = line.find('"', open + 1);
        if (close == std::string::npos)
            break;
        size_t colon = line.find(':', close);
        if (colon == std::string::npos)
            break;
        const char *p = line.c_str() + colon + 1;
        char *end = nullptr;
        double v = std::strtod(p, &end);
        if (end == p)
            return std::nullopt; // Corrupt value: drop the record.
        rec.fields.push_back(
            {line.substr(open + 1, close - open - 1), v});
        i = static_cast<size_t>(end - line.c_str());
        while (i < line.size() && (line[i] == ',' || line[i] == ' '))
            ++i;
    }

    forEachArrayChunk(line, "regions", [&rec](const std::string &c) {
        LedgerRegionRow r;
        r.function = stringAfter(c, "function").value_or("");
        r.regionId =
            static_cast<int>(u64After(c, "region").value_or(0));
        r.srcLine = static_cast<int>(u64After(c, "line").value_or(0));
        r.entries = u64After(c, "entries").value_or(0);
        r.misspecs = u64After(c, "misspecs").value_or(0);
        r.specInsts = u64After(c, "spec_insts").value_or(0);
        r.handlerInsts = u64After(c, "handler_insts").value_or(0);
        r.handlerCycles = u64After(c, "handler_cycles").value_or(0);
        rec.regions.push_back(std::move(r));
    });

    forEachArrayChunk(line, "heat", [&rec](const std::string &c) {
        LedgerHeatRow h;
        h.function = stringAfter(c, "function").value_or("");
        h.block = stringAfter(c, "block").value_or("");
        h.regionId =
            static_cast<int>(u64After(c, "region").value_or(0));
        h.srcLine = static_cast<int>(u64After(c, "line").value_or(0));
        h.entries = u64After(c, "entries").value_or(0);
        h.insts = u64After(c, "insts").value_or(0);
        h.cycles = u64After(c, "cycles").value_or(0);
        h.misspecs = u64After(c, "misspecs").value_or(0);
        rec.heat.push_back(std::move(h));
    });

    return rec;
}

std::vector<LedgerRecord>
loadLedger(const std::string &path)
{
    std::vector<LedgerRecord> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    while (std::getline(in, line))
        if (auto rec = parseLedgerLine(line))
            out.push_back(std::move(*rec));
    return out;
}

std::string
validateLedgerRecord(const LedgerRecord &rec)
{
    if (rec.schemaVersion < 1 ||
        rec.schemaVersion > kLedgerSchemaVersion)
        return "unsupported schema_version " +
               std::to_string(rec.schemaVersion);
    if (rec.kind != "cell" && rec.kind != "matrix")
        return "unknown kind \"" + rec.kind + "\"";
    if (rec.flavour.empty())
        return "missing flavour";
    if (rec.bench.empty())
        return "missing bench";

    if (rec.kind == "matrix") {
        for (const char *name :
             {"matrix.cells", "wall.p50_sec", "wall.p95_sec",
              "wall.p99_sec"})
            if (!rec.field(name))
                return std::string("matrix record missing ") + name;
        return "";
    }

    // Cell records: full provenance...
    if (rec.workload.empty())
        return "missing workload";
    if (rec.cellKey.empty())
        return "missing cell_key";
    if (rec.systemKey.empty())
        return "missing system_key";
    if (rec.artifactKey.empty())
        return "missing artifact_key";
    if (rec.cacheSource != "compile" && rec.cacheSource != "memory" &&
        rec.cacheSource != "disk")
        return "cache_source must be compile|memory|disk, got \"" +
               rec.cacheSource + "\"";
    if (rec.engine.empty())
        return "missing engine";
    if (rec.policy.empty())
        return "missing policy";
    if (rec.outputChecksum.size() != 16)
        return "output_checksum must be 16 hex digits";

    // ...and the full telemetry surface.
    for (const char *name :
         {"counters.instructions", "counters.cycles",
          "counters.misspeculations", "cache.l1i.accesses",
          "cache.l1d.accesses", "cache.l2.accesses", "dram.reads",
          "dram.writes", "energy.alu_pj", "energy.regfile_pj",
          "energy.dcache_pj", "energy.icache_pj",
          "energy.pipeline_pj", "energy.model_pj", "energy.total_pj",
          "energy.epi_pj", "run.return", "run.wall_sec"})
        if (!rec.field(name))
            return std::string("cell record missing ") + name;

    // The breakdown must sum to the model total bit-exactly: the
    // serializer round-trips doubles via %.17g and this addition order
    // matches EnergyBreakdown::total().
    const double parts =
        *rec.field("energy.alu_pj") + *rec.field("energy.regfile_pj") +
        *rec.field("energy.dcache_pj") +
        *rec.field("energy.icache_pj") +
        *rec.field("energy.pipeline_pj");
    if (parts != *rec.field("energy.model_pj"))
        return "energy breakdown does not sum to energy.model_pj";

    // Detail rows must reconcile exactly with the aggregate counters:
    // BlockMap is a total partition, so the recorded whole-run heat
    // totals equal the ActivityCounters sums even though only the
    // top-K rows are kept.
    if (!rec.heat.empty()) {
        for (const char *name :
             {"heat.total_insts", "heat.total_cycles",
              "heat.total_misspecs"})
            if (!rec.field(name))
                return std::string("heat rows present but missing ") +
                       name;
        if (*rec.field("heat.total_insts") !=
            *rec.field("counters.instructions"))
            return "heat.total_insts != counters.instructions";
        if (*rec.field("heat.total_cycles") !=
            *rec.field("counters.cycles"))
            return "heat.total_cycles != counters.cycles";
        if (*rec.field("heat.total_misspecs") !=
            *rec.field("counters.misspeculations"))
            return "heat.total_misspecs != counters.misspeculations";
        uint64_t row_insts = 0;
        for (const LedgerHeatRow &h : rec.heat)
            row_insts += h.insts;
        if (static_cast<double>(row_insts) >
            *rec.field("heat.total_insts"))
            return "heat rows exceed heat.total_insts";
    }
    if (!rec.regions.empty()) {
        auto unattributed = rec.field("regions.unattributed_misspecs");
        if (!unattributed)
            return "region rows present but missing "
                   "regions.unattributed_misspecs";
        uint64_t attributed = 0;
        for (const LedgerRegionRow &r : rec.regions)
            attributed += r.misspecs;
        if (static_cast<double>(attributed) + *unattributed !=
            *rec.field("counters.misspeculations"))
            return "region misspecs do not reconcile with "
                   "counters.misspeculations";
    }
    return "";
}

LedgerWriter::LedgerWriter(const std::string &path) : path_(path)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        log::warn("ledger: cannot open %s for append: %s",
                  path.c_str(), std::strerror(errno));
}

LedgerWriter::~LedgerWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

uint64_t
LedgerWriter::recordsWritten() const
{
    return written_.load(std::memory_order_relaxed);
}

bool
LedgerWriter::append(const LedgerRecord &rec)
{
    if (fd_ < 0)
        return false;
    // One write(2) per record: with O_APPEND the kernel positions and
    // writes atomically, so concurrent appenders (threads or whole
    // processes sharing the path) never interleave inside a line.
    std::string line = toJsonLine(rec);
    line += '\n';
    ssize_t n;
    do {
        n = ::write(fd_, line.data(), line.size());
    } while (n < 0 && errno == EINTR);
    if (n != static_cast<ssize_t>(line.size())) {
        log::warn("ledger: short write to %s: %s", path_.c_str(),
                  n < 0 ? std::strerror(errno) : "partial");
        return false;
    }
    written_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

namespace
{

std::mutex g_writer_mu;
std::unique_ptr<LedgerWriter> g_writer;
bool g_writer_init = false;
std::atomic<int> g_detail{-1}; ///< -1 = not yet read from env.

} // namespace

LedgerWriter *
LedgerWriter::global()
{
    std::lock_guard<std::mutex> lock(g_writer_mu);
    if (!g_writer_init) {
        g_writer_init = true;
        const std::string path = env::getString("BITSPEC_LEDGER");
        if (!path.empty()) {
            auto writer = std::make_unique<LedgerWriter>(path);
            if (writer->ok())
                g_writer = std::move(writer);
        }
    }
    return g_writer.get();
}

void
LedgerWriter::setGlobal(std::unique_ptr<LedgerWriter> writer)
{
    std::lock_guard<std::mutex> lock(g_writer_mu);
    g_writer_init = true;
    g_writer = std::move(writer);
}

bool
LedgerWriter::detailEnabled()
{
    int d = g_detail.load(std::memory_order_relaxed);
    if (d < 0) {
        d = env::getBool("BITSPEC_LEDGER_DETAIL", false) ? 1 : 0;
        g_detail.store(d, std::memory_order_relaxed);
    }
    return d == 1;
}

void
LedgerWriter::setDetail(bool on)
{
    g_detail.store(on ? 1 : 0, std::memory_order_relaxed);
}

} // namespace bitspec
