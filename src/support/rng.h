/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic element of the reproduction (input generators,
 * synthetic images, property tests) is seeded explicitly so that runs
 * are bit-reproducible across machines.
 */

#ifndef BITSPEC_SUPPORT_RNG_H_
#define BITSPEC_SUPPORT_RNG_H_

#include <cstdint>

namespace bitspec
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform draw in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform draw in [lo, hi] inclusive. */
    uint64_t nextRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    uint64_t s_[4];
};

} // namespace bitspec

#endif // BITSPEC_SUPPORT_RNG_H_
