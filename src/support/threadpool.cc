#include "support/threadpool.h"

#include "support/env.h"

namespace bitspec
{

unsigned
ThreadPool::defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return env::getUnsigned("BITSPEC_JOBS", hw >= 1 ? hw : 1, 1, 1024);
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to drain.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task catches anything the callable throws and
        // parks it in the corresponding future; nothing escapes here.
        task();
    }
}

} // namespace bitspec
