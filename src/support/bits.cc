#include "support/bits.h"

#include <bit>

#include "support/error.h"

namespace bitspec
{

unsigned
requiredBits(uint64_t value)
{
    if (value == 0)
        return 1;
    return 64u - static_cast<unsigned>(std::countl_zero(value));
}

unsigned
requiredBitsSigned(int64_t value)
{
    // Smallest n with sextFrom(value, n) == value. For non-negative
    // values this is requiredBits(value) + 1 (room for the sign bit);
    // for negative values, fold the sign away and count. 0 and -1 are
    // representable in a single bit.
    if (value == 0 || value == -1)
        return 1;
    if (value > 0)
        return requiredBits(static_cast<uint64_t>(value)) + 1;
    uint64_t folded = static_cast<uint64_t>(~value);
    return requiredBits(folded) + 1;
}

unsigned
bitwidthClass(unsigned bits)
{
    if (bits <= 8)
        return 8;
    if (bits <= 16)
        return 16;
    if (bits <= 32)
        return 32;
    return 64;
}

uint64_t
lowMask(unsigned bits)
{
    bsAssert(bits >= 1 && bits <= 64, "lowMask: bits out of range");
    if (bits == 64)
        return ~0ULL;
    return (1ULL << bits) - 1;
}

uint64_t
truncTo(uint64_t value, unsigned bits)
{
    return value & lowMask(bits);
}

uint64_t
zextFrom(uint64_t value, unsigned bits)
{
    return truncTo(value, bits);
}

uint64_t
sextFrom(uint64_t value, unsigned bits)
{
    bsAssert(bits >= 1 && bits <= 64, "sextFrom: bits out of range");
    uint64_t v = truncTo(value, bits);
    if (bits == 64)
        return v;
    uint64_t sign = 1ULL << (bits - 1);
    return (v ^ sign) - sign;
}

bool
fitsUnsigned(uint64_t value, unsigned bits)
{
    return requiredBits(value) <= bits;
}

} // namespace bitspec
