#include "support/bits.h"

namespace bitspec
{

unsigned
requiredBitsSigned(int64_t value)
{
    // Smallest n with sextFrom(value, n) == value. For non-negative
    // values this is requiredBits(value) + 1 (room for the sign bit);
    // for negative values, fold the sign away and count. 0 and -1 are
    // representable in a single bit.
    if (value == 0 || value == -1)
        return 1;
    if (value > 0)
        return requiredBits(static_cast<uint64_t>(value)) + 1;
    uint64_t folded = static_cast<uint64_t>(~value);
    return requiredBits(folded) + 1;
}

} // namespace bitspec
