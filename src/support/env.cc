#include "support/env.h"

#include <cctype>
#include <cstdlib>

#include "support/error.h"
#include "support/str.h"

namespace bitspec::env
{

std::optional<std::string>
raw(const char *name)
{
    const char *v = std::getenv(name);
    if (!v)
        return std::nullopt;
    return std::string(v);
}

std::string
getString(const char *name, const std::string &def)
{
    auto v = raw(name);
    return v ? *v : def;
}

bool
getBool(const char *name, bool def)
{
    auto v = raw(name);
    if (!v)
        return def;
    if (*v == "1" || *v == "true" || *v == "on")
        return true;
    if (*v == "0" || *v == "false" || *v == "off" || v->empty())
        return false;
    fatal(strFormat("%s: malformed boolean \"%s\" "
                    "(use 1/true/on or 0/false/off)",
                    name, v->c_str()));
}

unsigned
getUnsigned(const char *name, unsigned def, unsigned lo, unsigned hi)
{
    auto v = raw(name);
    if (!v)
        return def;
    char *end = nullptr;
    unsigned long n = std::strtoul(v->c_str(), &end, 10);
    // strtoul tolerates leading whitespace and sign characters; a
    // knob value must be nothing but digits.
    bool digits = !v->empty() &&
                  std::isdigit(static_cast<unsigned char>((*v)[0]));
    if (!digits || !end || *end != '\0')
        fatal(strFormat("%s: malformed unsigned integer \"%s\"", name,
                        v->c_str()));
    if (n < lo || n > hi)
        fatal(strFormat("%s: value %lu out of range [%u, %u]", name, n,
                        lo, hi));
    return static_cast<unsigned>(n);
}

} // namespace bitspec::env
