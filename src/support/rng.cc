#include "support/rng.h"

#include "support/error.h"

namespace bitspec
{

namespace
{

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    bsAssert(bound != 0, "nextBelow: zero bound");
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::nextRange(uint64_t lo, uint64_t hi)
{
    bsAssert(lo <= hi, "nextRange: empty range");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace bitspec
