#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace bitspec
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        bsAssert(x > 0.0, "geomean: non-positive value");
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    bsAssert(!xs.empty(), "percentile: empty sample");
    bsAssert(p >= 0.0 && p <= 100.0, "percentile: p out of range");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void
Histogram::add(double x)
{
    samples_.push_back(x);
    sum_ += x;
    sorted_ = false;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
}

double
Histogram::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Histogram::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Histogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double
Histogram::percentile(double p) const
{
    bsAssert(p >= 0.0 && p <= 100.0,
             "Histogram::percentile: p out of range");
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (samples_.size() == 1)
        return samples_[0];
    double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

} // namespace bitspec
