#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace bitspec
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        bsAssert(x > 0.0, "geomean: non-positive value");
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    bsAssert(!xs.empty(), "percentile: empty sample");
    bsAssert(p >= 0.0 && p <= 100.0, "percentile: p out of range");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace bitspec
