/**
 * @file
 * Misspeculation policy, shared by every execution engine.
 *
 * Lives in support/ (not interp/) because the uarch cores consume it
 * too and uarch does not link against the interpreter. Theorem 3.1/3.2
 * make misspeculation semantics-preserving, so *any* policy must
 * produce the committed outputs of the Hardware policy — the property
 * the differential fuzzer (src/fuzz/) exercises across engines.
 */

#ifndef BITSPEC_SUPPORT_MISSPEC_H_
#define BITSPEC_SUPPORT_MISSPEC_H_

namespace bitspec
{

/** How speculative instructions behave during execution. */
enum class MisspecPolicy
{
    /** Table-1 semantics: misspeculate when the value does not fit. */
    Hardware,
    /** Misspeculate at the first opportunity in every region entered
     *  (plus whenever required); exercises Theorem 3.2. In the machine
     *  cores this forces *every* check — equivalent, since a redirect
     *  leaves CFG_spec for good within an invocation. */
    ForceFirst,
    /** Misspeculate randomly with probability 1/8 (plus whenever
     *  required); randomised correctness testing. */
    Random,
};

inline const char *
misspecPolicyName(MisspecPolicy p)
{
    switch (p) {
      case MisspecPolicy::Hardware: return "hardware";
      case MisspecPolicy::ForceFirst: return "force-first";
      case MisspecPolicy::Random: return "random";
    }
    return "?";
}

} // namespace bitspec

#endif // BITSPEC_SUPPORT_MISSPEC_H_
