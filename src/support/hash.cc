#include "support/hash.h"

#include <array>
#include <bit>
#include <cstdio>

namespace bitspec
{

namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::string
Hash128::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

Hash128Builder::Hash128Builder()
{
    h_.hi = kFnvOffset;
    h_.lo = kGolden;
}

void
Hash128Builder::update(const void *data, size_t size)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t hi = h_.hi, lo = h_.lo;
    for (size_t i = 0; i < size; ++i) {
        hi = (hi ^ p[i]) * kFnvPrime;
        lo ^= p[i] + kGolden + (lo << 6) + (lo >> 2);
    }
    h_.hi = hi;
    h_.lo = lo;
}

void
Hash128Builder::updateU64(uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<uint8_t>(v >> (8 * i));
    update(b, sizeof b);
}

void
Hash128Builder::updateDouble(double v)
{
    updateU64(std::bit_cast<uint64_t>(v));
}

uint32_t
crc32(const void *data, size_t size)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t c = 0xffffffffu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace bitspec
