#include "support/str.h"

#include <cstdarg>
#include <cstdio>

namespace bitspec
{

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

std::vector<std::string>
strSplit(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace bitspec
