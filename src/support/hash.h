/**
 * @file
 * Hashing primitives shared by the cache layers: a 128-bit
 * incremental content hash (cache keys) and CRC-32 (artifact payload
 * integrity).
 *
 * Hash128 is not cryptographic. It is two independent 64-bit lanes —
 * FNV-1a plus a golden-ratio mix — which is plenty for cache keying:
 * a colliding pair would have to agree in both lanes. Consumers that
 * cannot tolerate even that (the on-disk artifact store) additionally
 * compare the canonical key string embedded in the payload.
 */

#ifndef BITSPEC_SUPPORT_HASH_H_
#define BITSPEC_SUPPORT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bitspec
{

/** A 128-bit hash value; usable as an unordered_map key. */
struct Hash128
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const Hash128 &) const = default;

    /** 32 lowercase hex digits (hi then lo); stable across runs,
     *  suitable as an on-disk file name. */
    std::string hex() const;
};

/** Functor for unordered containers keyed by Hash128. */
struct Hash128Hasher
{
    size_t
    operator()(const Hash128 &k) const
    {
        return static_cast<size_t>(k.lo ^
                                   (k.hi * 0x9e3779b97f4a7c15ULL));
    }
};

/** Incremental Hash128 builder. Deterministic across processes and
 *  platforms (byte-oriented, no pointer or layout dependence). */
class Hash128Builder
{
  public:
    Hash128Builder();

    void update(const void *data, size_t size);
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Canonical little-endian encodings so integer fields hash
     *  identically regardless of host width. */
    void updateU64(uint64_t v);
    void updateDouble(double v); ///< By bit pattern (%.17g-faithful).

    Hash128 digest() const { return h_; }

  private:
    Hash128 h_;
};

/** CRC-32 (IEEE 802.3, reflected) of @p size bytes at @p data. */
uint32_t crc32(const void *data, size_t size);

} // namespace bitspec

#endif // BITSPEC_SUPPORT_HASH_H_
