/**
 * @file
 * Structured leveled logging for the whole toolchain.
 *
 * Before this existed every subsystem warned through bare
 * fprintf(stderr, ...) — the messages were invisible to the
 * observability stack (no trace events, no counters, nothing for the
 * flight recorder to replay after a crash). All diagnostics now go
 * through log::error/warn/info/debug:
 *
 *  - severity filtering via the typed BITSPEC_LOG env knob
 *    (error|warn|info|debug; default warn), hard-erroring on
 *    malformed values like every other knob in support/env.h;
 *  - per-level atomic counters (log::count) so harnesses and the run
 *    ledger can record "this run produced N warnings" as telemetry;
 *  - an optional process-wide sink hook (log::setSink) through which
 *    obs/flightrec captures every emitted message into its crash
 *    rings — support/ cannot link against obs/, so the dependency
 *    points the other way via this callback.
 *
 * Messages always carry their level prefix ("bitspec[warn]: ...") and
 * go to stderr, keeping stdout clean for bench/report payloads.
 * Emission is cheap when filtered: one relaxed atomic load and an
 * integer compare, no formatting.
 */

#ifndef BITSPEC_SUPPORT_LOG_H_
#define BITSPEC_SUPPORT_LOG_H_

#include <cstdint>

namespace bitspec::log
{

/** Severities, most to least severe. Filtering keeps levels <= the
 *  configured threshold. */
enum class Level : int
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Printable name ("error", "warn", ...). */
const char *levelName(Level l);

/** The active threshold (from BITSPEC_LOG at first use, or
 *  setThreshold). Messages above it are counted but not emitted. */
Level threshold();

/** Override the threshold (tests, harnesses; wins over the env). */
void setThreshold(Level l);

/** Cheap filter check: would a message at @p l be emitted? */
bool enabled(Level l);

/** Emit a printf-style message at @p l. Always bumps the level's
 *  counter and feeds the sink (even when filtered from stderr, so the
 *  flight recorder sees debug chatter the console hides). */
void message(Level l, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void error(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void info(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Messages recorded at @p l since process start (filtered ones
 *  included — the counter tracks occurrences, not console lines). */
uint64_t count(Level l);

/** Reset every level counter (test isolation). */
void resetCounts();

/**
 * Process-wide observer of every formatted message (any level,
 * filtered or not). One sink; setting replaces the previous one,
 * nullptr detaches. The callback runs on the emitting thread and must
 * be cheap and reentrancy-safe (it must not log).
 */
using Sink = void (*)(Level l, const char *msg);
void setSink(Sink sink);

} // namespace bitspec::log

#endif // BITSPEC_SUPPORT_LOG_H_
