/**
 * @file
 * Error handling for the BitSpec library.
 *
 * Two failure modes, mirroring the gem5 convention:
 *  - fatal(): user-visible error (bad input program, bad configuration).
 *  - panic(): internal invariant violation (a BitSpec bug).
 *
 * Both throw exceptions so library users can recover; the distinction is
 * carried in the exception type.
 */

#ifndef BITSPEC_SUPPORT_ERROR_H_
#define BITSPEC_SUPPORT_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace bitspec
{

/** Error caused by user input: bad source program, bad configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Error caused by an internal invariant violation (a BitSpec bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Throw a FatalError with the given message. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Throw a PanicError with the given message. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

/** Panic unless @p cond holds. Used for internal invariants. */
inline void
bsAssert(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace bitspec

#endif // BITSPEC_SUPPORT_ERROR_H_
