/**
 * @file
 * Centralized environment-knob parsing.
 *
 * Every BITSPEC_* environment variable goes through these typed
 * accessors so the knobs behave uniformly: an unset variable yields
 * the documented default, and a malformed value is a hard fatal()
 * instead of a silent fallback (a typo like BITSPEC_JOBS=8x used to
 * quietly run with hardware concurrency).
 *
 * Knob inventory (kept here so there is one place to look):
 *  - BITSPEC_JOBS          worker threads for the experiment engine
 *  - BITSPEC_VERIFY_EACH   per-stage pipeline verification (bool)
 *  - BITSPEC_TRACE         path for the Chrome trace-event export
 *  - BITSPEC_METRICS       path for the metrics JSON-lines export
 *  - BITSPEC_FIG16_IMAGES  Fig. 16 profile/run grid size
 *  - BITSPEC_CORE_ENGINE   uarch engine: "fast" (default) | "legacy"
 *  - BITSPEC_ARTIFACT_DIR  compiled-System artifact store directory
 *                          (unset/empty = disk cache tier disabled)
 *  - BITSPEC_ARTIFACT_MAX_MB  artifact store size budget (default 512)
 *  - BITSPEC_LEDGER        path for run-ledger JSONL append
 *                          (obs/ledger.h; unset/empty = disabled)
 *  - BITSPEC_LEDGER_DETAIL embed per-region + heat rows per ledgered
 *                          cell (bool; costs the replay fast path)
 *  - BITSPEC_FLIGHTREC     crash flight-recorder dump directory
 *                          (obs/flightrec.h; unset/empty = disabled)
 *  - BITSPEC_LOG           stderr log threshold:
 *                          error|warn|info|debug (default warn)
 */

#ifndef BITSPEC_SUPPORT_ENV_H_
#define BITSPEC_SUPPORT_ENV_H_

#include <optional>
#include <string>

namespace bitspec::env
{

/** Raw value of @p name, or nullopt when unset. An empty string is a
 *  set-but-empty value, not nullopt. */
std::optional<std::string> raw(const char *name);

/** String knob: the variable's value, or @p def when unset. */
std::string getString(const char *name, const std::string &def = "");

/**
 * Boolean knob. Unset -> @p def. Accepted spellings (case-sensitive):
 * "1"/"true"/"on" -> true; "0"/"false"/"off"/"" -> false. Anything
 * else is a fatal() configuration error.
 */
bool getBool(const char *name, bool def);

/**
 * Unsigned-integer knob constrained to [lo, hi]. Unset -> @p def.
 * Non-numeric text, trailing junk, or an out-of-range value is a
 * fatal() configuration error.
 */
unsigned getUnsigned(const char *name, unsigned def, unsigned lo,
                     unsigned hi);

} // namespace bitspec::env

#endif // BITSPEC_SUPPORT_ENV_H_
