/**
 * @file
 * String formatting helpers used by printers and experiment tables.
 */

#ifndef BITSPEC_SUPPORT_STR_H_
#define BITSPEC_SUPPORT_STR_H_

#include <string>
#include <vector>

namespace bitspec
{

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> strSplit(const std::string &s, char sep);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, size_t width);

} // namespace bitspec

#endif // BITSPEC_SUPPORT_STR_H_
