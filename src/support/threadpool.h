/**
 * @file
 * Fixed-size worker pool with a FIFO task queue and future-based
 * results. Built for the experiment engine: workers never abort the
 * process — a task that throws (fatal(), bsAssert, anything derived
 * from std::exception) stores the exception in its future, and the
 * submitter sees it rethrown from future::get().
 */

#ifndef BITSPEC_SUPPORT_THREADPOOL_H_
#define BITSPEC_SUPPORT_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bitspec
{

/** A fixed-size pool of worker threads draining one task queue. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Worker count used when none is given: the BITSPEC_JOBS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency(); at least 1 either way.
     */
    static unsigned defaultThreadCount();

    /**
     * Enqueue @p f for execution; returns a future for its result.
     * Exceptions thrown by @p f propagate through future::get().
     */
    template <typename F>
    auto
    submit(F &&f) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace bitspec

#endif // BITSPEC_SUPPORT_THREADPOOL_H_
