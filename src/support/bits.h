/**
 * @file
 * Bit-level utilities shared across the compiler and the simulator.
 *
 * The central definition is requiredBits(), the paper's
 * RequiredBits(a) = floor(lg a + 1): the number of low-order bits needed
 * to store a value without information loss under zero extension.
 *
 * The width helpers here run once per interpreted IR instruction and
 * once per simulated machine instruction, so the hot ones are defined
 * inline; all take bits in [1, 64] (checked only in debug builds).
 */

#ifndef BITSPEC_SUPPORT_BITS_H_
#define BITSPEC_SUPPORT_BITS_H_

#include <bit>
#include <cassert>
#include <cstdint>

namespace bitspec
{

/**
 * Number of bits required to represent @p value under zero extension.
 *
 * requiredBits(0) == 1 by convention (one bit stores a zero), matching
 * the paper's floor(lg a + 1) with the a == 0 case pinned to 1.
 */
inline unsigned
requiredBits(uint64_t value)
{
    if (value == 0)
        return 1;
    return 64u - static_cast<unsigned>(std::countl_zero(value));
}

/**
 * Number of bits required for a two's-complement signed value, i.e. the
 * smallest n such that sign-extending the low n bits of @p value
 * reproduces @p value.
 */
unsigned requiredBitsSigned(int64_t value);

/**
 * Round a bit count up to the nearest storage class used throughout the
 * paper's figures: 8, 16, 32 or 64.
 */
inline unsigned
bitwidthClass(unsigned bits)
{
    if (bits <= 8)
        return 8;
    if (bits <= 16)
        return 16;
    if (bits <= 32)
        return 32;
    return 64;
}

/** Mask covering the low @p bits bits (bits in [1, 64]). */
inline uint64_t
lowMask(unsigned bits)
{
    assert(bits >= 1 && bits <= 64 && "lowMask: bits out of range");
    return ~0ULL >> (64u - bits);
}

/** Truncate @p value to its low @p bits bits. */
inline uint64_t
truncTo(uint64_t value, unsigned bits)
{
    return value & lowMask(bits);
}

/** Zero-extend the low @p bits bits of @p value to 64 bits. */
inline uint64_t
zextFrom(uint64_t value, unsigned bits)
{
    return truncTo(value, bits);
}

/** Sign-extend the low @p bits bits of @p value to 64 bits. */
inline uint64_t
sextFrom(uint64_t value, unsigned bits)
{
    assert(bits >= 1 && bits <= 64 && "sextFrom: bits out of range");
    uint64_t v = truncTo(value, bits);
    uint64_t sign = 1ULL << (bits - 1);
    return (v ^ sign) - sign;
}

/** True iff @p value fits in @p bits bits under zero extension. */
inline bool
fitsUnsigned(uint64_t value, unsigned bits)
{
    return requiredBits(value) <= bits;
}

} // namespace bitspec

#endif // BITSPEC_SUPPORT_BITS_H_
