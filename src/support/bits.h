/**
 * @file
 * Bit-level utilities shared across the compiler and the simulator.
 *
 * The central definition is requiredBits(), the paper's
 * RequiredBits(a) = floor(lg a + 1): the number of low-order bits needed
 * to store a value without information loss under zero extension.
 */

#ifndef BITSPEC_SUPPORT_BITS_H_
#define BITSPEC_SUPPORT_BITS_H_

#include <cstdint>

namespace bitspec
{

/**
 * Number of bits required to represent @p value under zero extension.
 *
 * requiredBits(0) == 1 by convention (one bit stores a zero), matching
 * the paper's floor(lg a + 1) with the a == 0 case pinned to 1.
 */
unsigned requiredBits(uint64_t value);

/**
 * Number of bits required for a two's-complement signed value, i.e. the
 * smallest n such that sign-extending the low n bits of @p value
 * reproduces @p value.
 */
unsigned requiredBitsSigned(int64_t value);

/**
 * Round a bit count up to the nearest storage class used throughout the
 * paper's figures: 8, 16, 32 or 64.
 */
unsigned bitwidthClass(unsigned bits);

/** Mask covering the low @p bits bits (bits in [1, 64]). */
uint64_t lowMask(unsigned bits);

/** Truncate @p value to its low @p bits bits. */
uint64_t truncTo(uint64_t value, unsigned bits);

/** Zero-extend the low @p bits bits of @p value to 64 bits. */
uint64_t zextFrom(uint64_t value, unsigned bits);

/** Sign-extend the low @p bits bits of @p value to 64 bits. */
uint64_t sextFrom(uint64_t value, unsigned bits);

/** True iff @p value fits in @p bits bits under zero extension. */
bool fitsUnsigned(uint64_t value, unsigned bits);

} // namespace bitspec

#endif // BITSPEC_SUPPORT_BITS_H_
