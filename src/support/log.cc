#include "support/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "support/env.h"
#include "support/error.h"

namespace bitspec::log
{

namespace
{

std::atomic<int> g_threshold{-1}; ///< -1 = not yet read from env.
std::atomic<Sink> g_sink{nullptr};
std::atomic<uint64_t> g_counts[4]{};

Level
thresholdFromEnv()
{
    const std::string v = env::getString("BITSPEC_LOG", "warn");
    if (v == "error")
        return Level::Error;
    if (v == "warn" || v.empty())
        return Level::Warn;
    if (v == "info")
        return Level::Info;
    if (v == "debug")
        return Level::Debug;
    fatal("BITSPEC_LOG must be error|warn|info|debug, got \"" + v +
          "\"");
}

} // namespace

const char *
levelName(Level l)
{
    switch (l) {
      case Level::Error: return "error";
      case Level::Warn: return "warn";
      case Level::Info: return "info";
      case Level::Debug: return "debug";
    }
    return "?";
}

Level
threshold()
{
    int t = g_threshold.load(std::memory_order_relaxed);
    if (t < 0) {
        t = static_cast<int>(thresholdFromEnv());
        g_threshold.store(t, std::memory_order_relaxed);
    }
    return static_cast<Level>(t);
}

void
setThreshold(Level l)
{
    g_threshold.store(static_cast<int>(l), std::memory_order_relaxed);
}

bool
enabled(Level l)
{
    return static_cast<int>(l) <= static_cast<int>(threshold());
}

namespace
{

void
vmessage(Level l, const char *fmt, va_list ap)
{
    g_counts[static_cast<int>(l)].fetch_add(1,
                                            std::memory_order_relaxed);
    Sink sink = g_sink.load(std::memory_order_acquire);
    if (!sink && !enabled(l))
        return; // Nothing would see the formatted text.

    char buf[1024];
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    if (sink)
        sink(l, buf);
    if (enabled(l))
        std::fprintf(stderr, "bitspec[%s]: %s\n", levelName(l), buf);
}

} // namespace

void
message(Level l, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vmessage(l, fmt, ap);
    va_end(ap);
}

#define BITSPEC_LOG_FN(fn, level)                                      \
    void fn(const char *fmt, ...)                                      \
    {                                                                  \
        va_list ap;                                                    \
        va_start(ap, fmt);                                             \
        vmessage(level, fmt, ap);                                      \
        va_end(ap);                                                    \
    }

BITSPEC_LOG_FN(error, Level::Error)
BITSPEC_LOG_FN(warn, Level::Warn)
BITSPEC_LOG_FN(info, Level::Info)
BITSPEC_LOG_FN(debug, Level::Debug)

#undef BITSPEC_LOG_FN

uint64_t
count(Level l)
{
    return g_counts[static_cast<int>(l)].load(
        std::memory_order_relaxed);
}

void
resetCounts()
{
    for (auto &c : g_counts)
        c.store(0, std::memory_order_relaxed);
}

void
setSink(Sink sink)
{
    g_sink.store(sink, std::memory_order_release);
}

} // namespace bitspec::log
