/**
 * @file
 * Small statistics helpers used by the experiment harnesses and the
 * metrics registry.
 */

#ifndef BITSPEC_SUPPORT_STATS_H_
#define BITSPEC_SUPPORT_STATS_H_

#include <cstdint>
#include <vector>

namespace bitspec
{

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for an empty vector. Values must be positive. */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile (p in [0, 100]) of a copy of @p xs.
 * Used for the cumulative-distribution experiment (Fig. 16).
 */
double percentile(std::vector<double> xs, double p);

/**
 * Sample-accumulating histogram with exact percentiles. Backs the
 * metrics registry's histogram kind; sample counts there are span
 * durations and per-run measurements, so holding the raw samples is
 * cheap and keeps p50/p95/p99 exact rather than bucketed. Every query
 * on an empty histogram returns 0.
 */
class Histogram
{
  public:
    void add(double x);

    /** Fold @p other's samples into this histogram. */
    void merge(const Histogram &other);

    uint64_t count() const { return samples_.size(); }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

    /** Linear-interpolated percentile, p in [0, 100]; 0 when empty. */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    const std::vector<double> &samples() const { return samples_; }

  private:
    /** Sorted lazily by percentile(); add/merge just append. */
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
};

} // namespace bitspec

#endif // BITSPEC_SUPPORT_STATS_H_
