/**
 * @file
 * Small statistics helpers used by the experiment harnesses.
 */

#ifndef BITSPEC_SUPPORT_STATS_H_
#define BITSPEC_SUPPORT_STATS_H_

#include <vector>

namespace bitspec
{

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for an empty vector. Values must be positive. */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile (p in [0, 100]) of a copy of @p xs.
 * Used for the cumulative-distribution experiment (Fig. 16).
 */
double percentile(std::vector<double> xs, double p);

} // namespace bitspec

#endif // BITSPEC_SUPPORT_STATS_H_
