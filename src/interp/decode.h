/**
 * @file
 * Pre-decoded execution form of an IR function.
 *
 * The tree-walking interpreter re-resolved operands, speculative-region
 * membership and phi predecessors on every dynamic instruction. A
 * DecodedFunction flattens a Function once into dense arrays the
 * execution loop can index:
 *
 *  - DecodedInst: opcode + widths + operand descriptors resolved to
 *    frame slots or inline immediates (constants and global addresses),
 *    with branch targets as block indices and the destination frame
 *    slot precomputed.
 *  - DecodedBlock: contiguous instruction range, the block's
 *    speculative-region ordinal and handler block index (replacing the
 *    per-call std::map<const BasicBlock*, SpecRegion*>), and its phi
 *    move lists.
 *  - PhiMove lists: one per (block, predecessor) pair, with the
 *    parallel copy sequentialised at decode time (cycles broken through
 *    a dedicated scratch slot) so block entry needs no temporary
 *    buffers and no allocation.
 *
 * Frame layout for a decoded call:
 *   [0, numSlots)                       SSA value slots (renumber() ids)
 *   [numSlots]                          parallel-copy scratch slot
 *   [numSlots + 1, numSlots + 1 + R)    per-region ForceFirst flags
 *
 * Decoding bakes in global addresses and instruction ids, so a cached
 * DecodedFunction is only valid while the module is structurally
 * unchanged; see Interpreter::invalidate().
 */

#ifndef BITSPEC_INTERP_DECODE_H_
#define BITSPEC_INTERP_DECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/function.h"

namespace bitspec
{

/** An operand resolved at decode time. */
struct DecodedOperand
{
    /** Frame slot when >= 0; otherwise the operand is `imm`. */
    int32_t slot = -1;
    /** Inline immediate: constant value or global address. */
    uint64_t imm = 0;
};

/** One flattened instruction. */
struct DecodedInst
{
    Opcode op;
    CmpPred pred = CmpPred::EQ;
    /** Result width. For Call this is already the effective trunc
     *  width (declared bits, or 64 for void callees). */
    uint8_t bits = 0;
    /**
     * Secondary width: ICmp compares and casts/Ret/Output/Store
     * truncate at the operand's width; a speculative Load reads its
     * original (pre-squeeze) width from memory.
     */
    uint8_t auxBits = 0;
    bool speculative = false;
    /** Destination frame slot, or -1 when nothing is written. */
    int32_t dst = -1;
    /** Operand range in DecodedFunction::operands(). */
    uint32_t opBegin = 0;
    uint16_t opCount = 0;
    /** Block-index branch targets (Br: target0; CondBr: both). */
    uint32_t target0 = 0;
    uint32_t target1 = 0;
    /** Dense value-profile id; valid when dst >= 0. */
    uint32_t profileId = 0;
    Function *callee = nullptr;
    /** Originating instruction, for hooks and diagnostics only. */
    const Instruction *inst = nullptr;
};

/** One move of a sequentialised phi parallel copy. */
struct PhiMove
{
    int32_t dst;
    DecodedOperand src;
    /** Width the value is truncated to on write (64 = raw copy). */
    uint8_t bits;
    /** Dense value-profile id; valid when phi != nullptr. */
    uint32_t profileId = 0;
    /** Originating phi, or nullptr for a decoder scratch move (which
     *  does not count as an executed instruction). */
    const Instruction *phi = nullptr;
};

/** Phi moves to run when entering a block from one predecessor. */
struct PhiList
{
    /** Predecessor block index (DecodedFunction::kNoPred = entry). */
    uint32_t pred;
    /** Move range in DecodedFunction::phiMoves(). */
    uint32_t begin = 0;
    uint32_t count = 0;
};

/** One flattened basic block. */
struct DecodedBlock
{
    /** Non-phi instruction range in DecodedFunction::insts(). */
    uint32_t instBegin = 0;
    uint32_t instCount = 0;
    /** Block index of the speculative-region handler, or -1. */
    int32_t handler = -1;
    /** Dense region ordinal (ForceFirst flag index), or -1. */
    int32_t region = -1;
    /** PhiList range in DecodedFunction::phiLists(). */
    uint32_t phiBegin = 0;
    uint32_t phiListCount = 0;
    /** Block heads with phis: every entry edge must match a PhiList. */
    bool hasPhis = false;
};

/** A Function flattened for index-dispatched execution. */
class DecodedFunction
{
  public:
    /** Sentinel predecessor index for the initial entry. */
    static constexpr uint32_t kNoPred = UINT32_MAX;

    /**
     * Flatten @p f. Calls f->renumber() to refresh dense value ids.
     * Value-profile ids are assigned from @p profile_base upward, one
     * per assignment site (phi or value-producing instruction).
     */
    static std::unique_ptr<DecodedFunction> decode(Function *f,
                                                   uint32_t profile_base);

    Function *function() const { return fn_; }
    uint32_t entryIndex() const { return 0; }
    size_t numArgs() const { return argBits_.size(); }
    unsigned argBits(size_t i) const { return argBits_[i]; }

    /** Frame slots including scratch and ForceFirst flags. */
    unsigned frameSize() const { return frameSize_; }
    unsigned scratchSlot() const { return numSlots_; }
    unsigned forcedBase() const { return numSlots_ + 1; }

    const DecodedBlock &block(uint32_t i) const { return blocks_[i]; }
    uint32_t
    numBlocks() const
    {
        return static_cast<uint32_t>(blocks_.size());
    }

    /** @name Per-block execution-profile cell range.
     * The interpreter owns one dense cell array across all decoded
     * functions; this function's blocks occupy
     * [blockBase, blockBase + numBlocks). Assigned by the interpreter
     * right after decode (like profile_base for value-profile ids).
     */
    /// @{
    uint32_t blockBase() const { return blockBase_; }
    void setBlockBase(uint32_t base) { blockBase_ = base; }
    /// @}

    const DecodedInst *insts() const { return insts_.data(); }
    const DecodedOperand *operands() const { return pool_.data(); }
    const PhiMove *phiMoves() const { return phiMoves_.data(); }

    /** Name of block @p i, for diagnostics. */
    const std::string &blockName(uint32_t i) const;

    /** Move list for entering @p blk from predecessor @p pred, or
     *  nullptr when no phi consumes that edge. */
    const PhiList *
    findPhiList(const DecodedBlock &blk, uint32_t pred) const
    {
        const PhiList *pl = phiLists_.data() + blk.phiBegin;
        for (uint32_t i = 0; i < blk.phiListCount; ++i)
            if (pl[i].pred == pred)
                return pl + i;
        return nullptr;
    }

    /** Assignment sites in profile-id order (from profile_base). */
    const std::vector<const Instruction *> &profiledInsts() const
    {
        return profInsts_;
    }

  private:
    DecodedFunction() = default;

    Function *fn_ = nullptr;
    unsigned numSlots_ = 0;
    uint32_t blockBase_ = 0;
    unsigned frameSize_ = 0;
    std::vector<unsigned> argBits_;
    std::vector<DecodedBlock> blocks_;
    std::vector<DecodedInst> insts_;
    std::vector<DecodedOperand> pool_;
    std::vector<PhiMove> phiMoves_;
    std::vector<PhiList> phiLists_;
    std::vector<const BasicBlock *> blockPtrs_;
    std::vector<const Instruction *> profInsts_;
};

} // namespace bitspec

#endif // BITSPEC_INTERP_DECODE_H_
