#include "interp/interpreter.h"

#include <set>

#include "support/bits.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

constexpr unsigned kMaxCallDepth = 8192;

uint64_t
shiftLeft(uint64_t a, uint64_t amt, unsigned bits)
{
    if (amt >= bits)
        return 0;
    return truncTo(a << amt, bits);
}

uint64_t
shiftRightLogical(uint64_t a, uint64_t amt, unsigned bits)
{
    if (amt >= bits)
        return 0;
    return truncTo(a, bits) >> amt;
}

uint64_t
shiftRightArith(uint64_t a, uint64_t amt, unsigned bits)
{
    int64_t sa = static_cast<int64_t>(sextFrom(a, bits));
    if (amt >= bits)
        return truncTo(sa < 0 ? ~0ULL : 0, bits);
    return truncTo(static_cast<uint64_t>(sa >> amt), bits);
}

bool
evalCmp(CmpPred pred, uint64_t a, uint64_t b, unsigned bits)
{
    uint64_t ua = truncTo(a, bits), ub = truncTo(b, bits);
    int64_t sa = static_cast<int64_t>(sextFrom(a, bits));
    int64_t sb = static_cast<int64_t>(sextFrom(b, bits));
    switch (pred) {
      case CmpPred::EQ: return ua == ub;
      case CmpPred::NE: return ua != ub;
      case CmpPred::ULT: return ua < ub;
      case CmpPred::ULE: return ua <= ub;
      case CmpPred::UGT: return ua > ub;
      case CmpPred::UGE: return ua >= ub;
      case CmpPred::SLT: return sa < sb;
      case CmpPred::SLE: return sa <= sb;
      case CmpPred::SGT: return sa > sb;
      case CmpPred::SGE: return sa >= sb;
    }
    panic("evalCmp: bad predicate");
}

} // namespace

Interpreter::Interpreter(Module &m, size_t mem_bytes) : module_(m)
{
    memory_.resize(mem_bytes, 0);
    module_.layoutGlobals();
    reset();
}

void
Interpreter::reset()
{
    std::fill(memory_.begin(), memory_.end(), 0);
    for (const auto &g : module_.globals()) {
        uint32_t base = g->address();
        bsAssert(base + g->sizeBytes() <= memory_.size(),
                 "global does not fit in memory: " + g->name());
        std::copy(g->data().begin(), g->data().end(),
                  memory_.begin() + base);
    }
    output_.clear();
    stats_ = InterpStats{};
}

uint64_t
Interpreter::loadMem(uint32_t addr, unsigned bits) const
{
    unsigned bytes = bits / 8;
    bsAssert(bytes >= 1 && bytes <= 8, "loadMem: bad width");
    if (addr + bytes > memory_.size())
        fatal(strFormat("out-of-bounds load at 0x%x", addr));
    uint64_t v = 0;
    for (unsigned b = 0; b < bytes; ++b)
        v |= static_cast<uint64_t>(memory_[addr + b]) << (8 * b);
    return v;
}

void
Interpreter::storeMem(uint32_t addr, uint64_t value, unsigned bits)
{
    unsigned bytes = bits / 8;
    bsAssert(bytes >= 1 && bytes <= 8, "storeMem: bad width");
    if (addr + bytes > memory_.size())
        fatal(strFormat("out-of-bounds store at 0x%x", addr));
    for (unsigned b = 0; b < bytes; ++b)
        memory_[addr + b] = static_cast<uint8_t>(value >> (8 * b));
}

unsigned
Interpreter::slotsOf(Function *f)
{
    auto it = slotCache_.find(f);
    if (it != slotCache_.end())
        return it->second;
    unsigned n = f->renumber();
    slotCache_[f] = n;
    return n;
}

uint64_t
Interpreter::run(const std::string &fn, const std::vector<uint64_t> &args)
{
    Function *f = module_.getFunction(fn);
    if (!f)
        fatal("no such function: " + fn);
    return callFunction(f, args, 0);
}

uint64_t
Interpreter::outputChecksum() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : output_) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

uint64_t
Interpreter::callFunction(Function *f, const std::vector<uint64_t> &args,
                          unsigned depth)
{
    if (depth > kMaxCallDepth)
        fatal("call depth exceeded in " + f->name());
    bsAssert(args.size() == f->numArgs(),
             "arity mismatch calling " + f->name());

    std::vector<uint64_t> frame(slotsOf(f), 0);
    for (size_t i = 0; i < args.size(); ++i)
        frame[f->valueId(f->arg(i))] =
            truncTo(args[i], f->arg(i)->type().bits);

    auto eval = [&](Value *v) -> uint64_t {
        switch (v->kind()) {
          case ValueKind::Constant:
            return static_cast<Constant *>(v)->value();
          case ValueKind::GlobalRef:
            return static_cast<GlobalRef *>(v)->global()->address();
          default:
            return frame[f->valueId(v)];
        }
    };

    // Lazily-built block -> region map for misspeculation routing.
    std::map<const BasicBlock *, SpecRegion *> region_of;
    for (const auto &sr : f->specRegions())
        for (BasicBlock *member : sr->blocks)
            region_of[member] = sr.get();

    // Regions already force-misspeculated under ForceFirst.
    std::set<const SpecRegion *> forced;

    BasicBlock *bb = f->entry();
    BasicBlock *prev = nullptr;

    for (;;) {
        // Phase 1: evaluate all phis in parallel against `prev`.
        auto phis = bb->phis();
        if (!phis.empty()) {
            std::vector<uint64_t> vals(phis.size());
            for (size_t p = 0; p < phis.size(); ++p) {
                Instruction *phi = phis[p];
                bool found = false;
                for (size_t i = 0; i < phi->numOperands(); ++i) {
                    if (phi->blockOperand(i) == prev) {
                        vals[p] = truncTo(eval(phi->operand(i)),
                                          phi->type().bits);
                        found = true;
                        break;
                    }
                }
                if (!found)
                    panic("phi has no entry for predecessor " +
                          (prev ? prev->name() : std::string("<entry>")) +
                          " in " + bb->name());
                ++stats_.steps;
                ++stats_.intAssignments;
            }
            for (size_t p = 0; p < phis.size(); ++p) {
                frame[f->valueId(phis[p])] = vals[p];
                if (onAssign)
                    onAssign(phis[p], vals[p]);
            }
        }

        // Phase 2: straight-line execution.
        bool transferred = false;
        for (auto it = bb->firstNonPhi(); it != bb->insts().end(); ++it) {
            Instruction *inst = it->get();
            if (++stats_.steps > fuel_)
                fatal("out of fuel (infinite loop?) in " + f->name());

            // Misspeculation routing shared by all speculative ops.
            auto misspeculate = [&]() {
                SpecRegion *sr = region_of.count(bb) ? region_of[bb]
                                                     : nullptr;
                bsAssert(sr != nullptr,
                         "speculative op outside a region in " +
                         bb->name());
                ++stats_.misspeculations;
                if (onMisspec)
                    onMisspec(inst);
                prev = bb;
                bb = sr->handler;
                transferred = true;
            };

            // Under forcing policies, misspeculate even when the value
            // would fit.
            auto shouldForce = [&]() {
                if (!inst->isSpeculative() || !region_of.count(bb))
                    return false;
                if (policy_ == MisspecPolicy::ForceFirst)
                    return forced.insert(region_of[bb]).second;
                if (policy_ == MisspecPolicy::Random)
                    return rng_.next() % 8 == 0;
                return false;
            };

            unsigned bits = inst->type().bits;
            uint64_t result = 0;
            bool writes = !inst->type().isVoid();

            switch (inst->op()) {
              case Opcode::Add: {
                uint64_t a = eval(inst->operand(0));
                uint64_t b = eval(inst->operand(1));
                uint64_t full = truncTo(a, bits) + truncTo(b, bits);
                if (inst->isSpeculative() &&
                    (full > lowMask(bits) || shouldForce())) {
                    misspeculate();
                    break;
                }
                result = truncTo(full, bits);
                break;
              }
              case Opcode::Sub: {
                uint64_t a = truncTo(eval(inst->operand(0)), bits);
                uint64_t b = truncTo(eval(inst->operand(1)), bits);
                if (inst->isSpeculative() && (a < b || shouldForce())) {
                    misspeculate();
                    break;
                }
                result = truncTo(a - b, bits);
                break;
              }
              case Opcode::Mul:
                result = truncTo(eval(inst->operand(0)) *
                                 eval(inst->operand(1)), bits);
                break;
              case Opcode::UDiv: {
                uint64_t b = truncTo(eval(inst->operand(1)), bits);
                if (b == 0)
                    fatal("division by zero in " + f->name());
                result = truncTo(eval(inst->operand(0)), bits) / b;
                break;
              }
              case Opcode::SDiv: {
                int64_t b = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(1)), bits));
                if (b == 0)
                    fatal("division by zero in " + f->name());
                int64_t a = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(0)), bits));
                result = truncTo(static_cast<uint64_t>(a / b), bits);
                break;
              }
              case Opcode::URem: {
                uint64_t b = truncTo(eval(inst->operand(1)), bits);
                if (b == 0)
                    fatal("remainder by zero in " + f->name());
                result = truncTo(eval(inst->operand(0)), bits) % b;
                break;
              }
              case Opcode::SRem: {
                int64_t b = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(1)), bits));
                if (b == 0)
                    fatal("remainder by zero in " + f->name());
                int64_t a = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(0)), bits));
                result = truncTo(static_cast<uint64_t>(a % b), bits);
                break;
              }
              case Opcode::And:
                result = truncTo(eval(inst->operand(0)) &
                                 eval(inst->operand(1)), bits);
                if (inst->isSpeculative() && shouldForce()) {
                    // Logic never misspeculates in hardware; forcing
                    // policies still exercise the handler path.
                    misspeculate();
                }
                break;
              case Opcode::Or:
                result = truncTo(eval(inst->operand(0)) |
                                 eval(inst->operand(1)), bits);
                break;
              case Opcode::Xor:
                result = truncTo(eval(inst->operand(0)) ^
                                 eval(inst->operand(1)), bits);
                break;
              case Opcode::Shl:
                result = shiftLeft(eval(inst->operand(0)),
                                   eval(inst->operand(1)), bits);
                break;
              case Opcode::LShr:
                result = shiftRightLogical(eval(inst->operand(0)),
                                           eval(inst->operand(1)), bits);
                break;
              case Opcode::AShr:
                result = shiftRightArith(eval(inst->operand(0)),
                                         eval(inst->operand(1)), bits);
                break;
              case Opcode::ICmp:
                result = evalCmp(inst->pred(), eval(inst->operand(0)),
                                 eval(inst->operand(1)),
                                 inst->operand(0)->type().bits) ? 1 : 0;
                break;
              case Opcode::Select:
                result = truncTo(eval(inst->operand(0)) != 0
                                     ? eval(inst->operand(1))
                                     : eval(inst->operand(2)), bits);
                break;
              case Opcode::ZExt:
                result = zextFrom(eval(inst->operand(0)),
                                  inst->operand(0)->type().bits);
                break;
              case Opcode::SExt:
                result = truncTo(sextFrom(eval(inst->operand(0)),
                                          inst->operand(0)->type().bits),
                                 bits);
                break;
              case Opcode::Trunc: {
                uint64_t v = truncTo(eval(inst->operand(0)),
                                     inst->operand(0)->type().bits);
                if (inst->isSpeculative() &&
                    (v > lowMask(bits) || shouldForce())) {
                    misspeculate();
                    break;
                }
                result = truncTo(v, bits);
                break;
              }
              case Opcode::Load: {
                auto addr =
                    static_cast<uint32_t>(eval(inst->operand(0)));
                if (inst->isSpeculative()) {
                    unsigned orig = inst->specOrigBits();
                    bsAssert(orig > bits, "spec load with no orig width");
                    uint64_t v = loadMem(addr, orig);
                    if (v > lowMask(bits) || shouldForce()) {
                        misspeculate();
                        break;
                    }
                    result = v;
                } else {
                    result = loadMem(addr, bits);
                }
                break;
              }
              case Opcode::Store: {
                auto addr =
                    static_cast<uint32_t>(eval(inst->operand(0)));
                Value *v = inst->operand(1);
                storeMem(addr, truncTo(eval(v), v->type().bits),
                         v->type().bits);
                break;
              }
              case Opcode::Call: {
                std::vector<uint64_t> call_args;
                for (Value *a : inst->operands())
                    call_args.push_back(eval(a));
                ++stats_.calls;
                result = callFunction(inst->callee(), call_args,
                                      depth + 1);
                result = truncTo(result, bits ? bits : 64);
                break;
              }
              case Opcode::Output: {
                Value *v = inst->operand(0);
                output_.push_back(truncTo(eval(v), v->type().bits));
                ++stats_.outputs;
                break;
              }
              case Opcode::Br:
                prev = bb;
                bb = inst->blockOperand(0);
                transferred = true;
                break;
              case Opcode::CondBr:
                prev = bb;
                bb = eval(inst->operand(0)) != 0 ? inst->blockOperand(0)
                                                 : inst->blockOperand(1);
                transferred = true;
                break;
              case Opcode::Ret:
                return inst->numOperands()
                           ? truncTo(eval(inst->operand(0)),
                                     inst->operand(0)->type().bits)
                           : 0;
              case Opcode::Unreachable:
                panic("executed unreachable in " + f->name());
              case Opcode::Phi:
                panic("phi after firstNonPhi");
            }

            if (transferred)
                break;

            if (writes) {
                frame[f->valueId(inst)] = result;
                ++stats_.intAssignments;
                if (onAssign)
                    onAssign(inst, result);
            }
        }

        bsAssert(transferred, "block fell through: " + bb->name());
    }
}

} // namespace bitspec
