#include "interp/interpreter.h"

#include <algorithm>
#include <set>

#include "analysis/known_bits.h"
#include "interp/decode.h"
#include "obs/trace.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

constexpr unsigned kMaxCallDepth = 8192;

uint64_t
shiftLeft(uint64_t a, uint64_t amt, unsigned bits)
{
    if (amt >= bits)
        return 0;
    return truncTo(a << amt, bits);
}

uint64_t
shiftRightLogical(uint64_t a, uint64_t amt, unsigned bits)
{
    if (amt >= bits)
        return 0;
    return truncTo(a, bits) >> amt;
}

uint64_t
shiftRightArith(uint64_t a, uint64_t amt, unsigned bits)
{
    int64_t sa = static_cast<int64_t>(sextFrom(a, bits));
    if (amt >= bits)
        return truncTo(sa < 0 ? ~0ULL : 0, bits);
    return truncTo(static_cast<uint64_t>(sa >> amt), bits);
}

bool
evalCmp(CmpPred pred, uint64_t a, uint64_t b, unsigned bits)
{
    uint64_t ua = truncTo(a, bits), ub = truncTo(b, bits);
    int64_t sa = static_cast<int64_t>(sextFrom(a, bits));
    int64_t sb = static_cast<int64_t>(sextFrom(b, bits));
    switch (pred) {
      case CmpPred::EQ: return ua == ub;
      case CmpPred::NE: return ua != ub;
      case CmpPred::ULT: return ua < ub;
      case CmpPred::ULE: return ua <= ub;
      case CmpPred::UGT: return ua > ub;
      case CmpPred::UGE: return ua >= ub;
      case CmpPred::SLT: return sa < sb;
      case CmpPred::SLE: return sa <= sb;
      case CmpPred::SGT: return sa > sb;
      case CmpPred::SGE: return sa >= sb;
    }
    panic("evalCmp: bad predicate");
}

} // namespace

Interpreter::Interpreter(Module &m, size_t mem_bytes) : module_(m)
{
    memory_.resize(mem_bytes, 0);
    module_.layoutGlobals();
    reset();
}

Interpreter::~Interpreter() = default;

void
Interpreter::reset()
{
    std::fill(memory_.begin(), memory_.end(), 0);
    for (const auto &g : module_.globals()) {
        uint32_t base = g->address();
        bsAssert(base + g->sizeBytes() <= memory_.size(),
                 "global does not fit in memory: " + g->name());
        std::copy(g->data().begin(), g->data().end(),
                  memory_.begin() + base);
    }
    output_.clear();
    stats_ = InterpStats{};
}

void
Interpreter::invalidate()
{
    decodeCache_.clear();
    legacyCache_.clear();
    slotCache_.clear();
    prof_.clear();
    profInst_.clear();
    staticBound_.clear();
    blockCells_.clear();
    blockOf_.clear();
}

uint64_t
Interpreter::loadMem(uint32_t addr, unsigned bits) const
{
    unsigned bytes = bits / 8;
    bsAssert(bytes >= 1 && bytes <= 8, "loadMem: bad width");
    // Compute the guard in 64 bits: addr + bytes wraps for addr near
    // UINT32_MAX and would let an out-of-bounds access through.
    if (static_cast<uint64_t>(addr) + bytes > memory_.size())
        fatal(strFormat("out-of-bounds load at 0x%x", addr));
    uint64_t v = 0;
    for (unsigned b = 0; b < bytes; ++b)
        v |= static_cast<uint64_t>(memory_[addr + b]) << (8 * b);
    return v;
}

void
Interpreter::storeMem(uint32_t addr, uint64_t value, unsigned bits)
{
    unsigned bytes = bits / 8;
    bsAssert(bytes >= 1 && bytes <= 8, "storeMem: bad width");
    if (static_cast<uint64_t>(addr) + bytes > memory_.size())
        fatal(strFormat("out-of-bounds store at 0x%x", addr));
    for (unsigned b = 0; b < bytes; ++b)
        memory_[addr + b] = static_cast<uint8_t>(value >> (8 * b));
}

unsigned
Interpreter::slotsOf(Function *f)
{
    auto it = slotCache_.find(f);
    if (it != slotCache_.end())
        return it->second;
    unsigned n = f->renumber();
    slotCache_[f] = n;
    return n;
}

const DecodedFunction &
Interpreter::decodedFor(Function *f)
{
    auto it = decodeCache_.find(f);
    if (it != decodeCache_.end())
        return *it->second;
    trace::Span span("interp.decode", "execute");
    span.arg("function", f->name());
    auto df = DecodedFunction::decode(
        f, static_cast<uint32_t>(profInst_.size()));
    for (const Instruction *inst : df->profiledInsts())
        profInst_.push_back(inst);
    prof_.resize(profInst_.size());
    if (boundsCheck_) {
        // Static ceilings are sound on every non-misspeculating path,
        // and misspeculating instructions never reach profileAssign.
        KnownBitsAnalysis kb(*f);
        for (const Instruction *inst : df->profiledInsts())
            staticBound_.push_back(
                requiredBits(kb.known(inst).hi));
    } else {
        staticBound_.resize(profInst_.size(), 64);
    }
    // Per-block profile cells are allocated eagerly (they are tiny)
    // so setBlockProfile can be toggled between runs without
    // re-decoding.
    df->setBlockBase(static_cast<uint32_t>(blockCells_.size()));
    blockCells_.resize(blockCells_.size() + df->numBlocks());
    for (uint32_t b = 0; b < df->numBlocks(); ++b)
        blockOf_.emplace_back(f, b);
    const DecodedFunction &ref = *df;
    decodeCache_.emplace(f, std::move(df));
    return ref;
}

const Interpreter::LegacyFunctionInfo &
Interpreter::legacyInfo(Function *f)
{
    auto it = legacyCache_.find(f);
    if (it != legacyCache_.end())
        return it->second;
    LegacyFunctionInfo &info = legacyCache_[f];
    for (const auto &sr : f->specRegions())
        for (BasicBlock *member : sr->blocks)
            info.regionOf[member] = sr.get();
    return info;
}

void
Interpreter::boundsViolation(uint32_t id, unsigned bits) const
{
    const Instruction *inst = profInst_[id];
    fatal(strFormat(
        "known-bits soundness violation: %s%s produced a %u-bit value "
        "but the static bound is %u bits",
        opcodeName(inst->op()),
        inst->name().empty() ? ""
                             : (" %" + inst->name()).c_str(),
        bits, staticBound_[id]));
}

std::vector<Interpreter::ValueProfileEntry>
Interpreter::valueProfile() const
{
    std::vector<ValueProfileEntry> out;
    for (size_t i = 0; i < prof_.size(); ++i) {
        const ProfCell &c = prof_[i];
        if (c.count == 0)
            continue;
        out.push_back({profInst_[i], c.minBits, c.maxBits, c.sumBits,
                       c.count});
    }
    return out;
}

std::vector<Interpreter::ValueProfileEntry>
Interpreter::takeValueProfile()
{
    std::vector<ValueProfileEntry> out = valueProfile();
    std::fill(prof_.begin(), prof_.end(), ProfCell{});
    return out;
}

std::vector<Interpreter::BlockProfileEntry>
Interpreter::blockProfile() const
{
    std::vector<BlockProfileEntry> out;
    for (size_t i = 0; i < blockCells_.size(); ++i) {
        const BlockCell &c = blockCells_[i];
        if (c.entries == 0)
            continue;
        BlockProfileEntry e;
        e.function = blockOf_[i].first;
        e.blockIndex = blockOf_[i].second;
        auto it = decodeCache_.find(e.function);
        if (it != decodeCache_.end())
            e.blockName = it->second->blockName(e.blockIndex);
        e.entries = c.entries;
        e.insts = c.insts;
        e.misspecs = c.misspecs;
        out.push_back(std::move(e));
    }
    return out;
}

uint64_t
Interpreter::run(const std::string &fn, const std::vector<uint64_t> &args)
{
    trace::Span span("interp.run", "execute");
    span.arg("function", fn);
    Function *f = module_.getFunction(fn);
    if (!f)
        fatal("no such function: " + fn);
    if (engine_ == ExecEngine::Legacy)
        return callFunction(f, args, 0);
    dstackTop_ = 0;
    return callDecoded(f, args.data(), args.size(), 0);
}

uint64_t
Interpreter::outputChecksum() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : output_) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

// --- Decoded engine ---------------------------------------------------

uint64_t
Interpreter::callDecoded(Function *f, const uint64_t *args, size_t nargs,
                         unsigned depth)
{
    if (depth > kMaxCallDepth)
        fatal("call depth exceeded in " + f->name());
    const DecodedFunction &df = decodedFor(f);
    bsAssert(nargs == df.numArgs(), "arity mismatch calling " + f->name());

    size_t base = dstackTop_;
    dstackTop_ = base + df.frameSize();
    if (dstack_.size() < dstackTop_)
        dstack_.resize(std::max<size_t>(dstackTop_, dstack_.size() * 2));
    std::fill(dstack_.begin() + base, dstack_.begin() + dstackTop_, 0);
    for (size_t i = 0; i < nargs; ++i)
        dstack_[base + i] = truncTo(args[i], df.argBits(i));

    uint64_t ret;
    bool hooks = static_cast<bool>(onAssign) ||
                 static_cast<bool>(onMisspec);
    if (blockProfileEnabled_) {
        if (profileEnabled_)
            ret = hooks ? execDecoded<true, true, true>(df, base, depth)
                        : execDecoded<false, true, true>(df, base, depth);
        else
            ret = hooks
                      ? execDecoded<true, false, true>(df, base, depth)
                      : execDecoded<false, false, true>(df, base, depth);
    } else {
        if (profileEnabled_)
            ret = hooks
                      ? execDecoded<true, true, false>(df, base, depth)
                      : execDecoded<false, true, false>(df, base, depth);
        else
            ret = hooks
                      ? execDecoded<true, false, false>(df, base, depth)
                      : execDecoded<false, false, false>(df, base,
                                                         depth);
    }
    dstackTop_ = base;
    return ret;
}

template <bool kHooks, bool kProfile, bool kBlockProf>
uint64_t
Interpreter::execDecoded(const DecodedFunction &df, size_t base,
                         unsigned depth)
{
    Function *f = df.function();
    const DecodedOperand *pool = df.operands();
    const PhiMove *all_moves = df.phiMoves();
    uint64_t *fr = dstack_.data() + base;

    auto val = [&](const DecodedOperand &o) {
        return o.slot >= 0 ? fr[o.slot] : o.imm;
    };

    // The two per-instruction counters live in locals so the inner loop
    // touches no member state; they are flushed back at every exit from
    // straight-line execution (returns, recursive calls, hooks, fatal
    // paths) and reloaded after anything that may bump them elsewhere.
    uint64_t steps = stats_.steps;
    uint64_t assigns = stats_.intAssignments;
    const uint64_t fuel = fuel_;
    auto flushCounters = [&]() {
        stats_.steps = steps;
        stats_.intAssignments = assigns;
    };
    auto reloadCounters = [&]() {
        steps = stats_.steps;
        assigns = stats_.intAssignments;
    };

    uint32_t cur = df.entryIndex();
    uint32_t prev = DecodedFunction::kNoPred;

    for (;;) {
        const DecodedBlock &blk = df.block(cur);

        // Per-block heat cell for the current block; compiled out
        // entirely when the block profile is off.
        [[maybe_unused]] BlockCell *bc = nullptr;
        if constexpr (kBlockProf) {
            bc = blockCells_.data() + df.blockBase() + cur;
            ++bc->entries;
        }

        // Phase 1: the decode-time-sequentialised phi parallel copy
        // for the edge we arrived over.
        if (blk.hasPhis) {
            const PhiList *pl = df.findPhiList(blk, prev);
            if (!pl)
                panic("phi has no entry for predecessor " +
                      (prev != DecodedFunction::kNoPred
                           ? df.blockName(prev)
                           : std::string("<entry>")) +
                      " in " + df.blockName(cur));
            const PhiMove *m = all_moves + pl->begin;
            const PhiMove *mend = m + pl->count;
            for (; m != mend; ++m) {
                uint64_t v = truncTo(val(m->src), m->bits);
                fr[m->dst] = v;
                if (m->phi) {
                    ++steps;
                    ++assigns;
                    if constexpr (kBlockProf)
                        ++bc->insts;
                    if constexpr (kProfile)
                        profileAssign(m->profileId, requiredBits(v));
                    if constexpr (kHooks)
                        if (onAssign) {
                            flushCounters();
                            onAssign(m->phi, v);
                            reloadCounters();
                        }
                }
            }
        }

        // Phase 2: straight-line execution over the dense array.
        const DecodedInst *ip = df.insts() + blk.instBegin;
        const DecodedInst *iend = ip + blk.instCount;
        for (; ip != iend; ++ip) {
            const DecodedInst &di = *ip;
            if (++steps > fuel) {
                flushCounters();
                fatal("out of fuel (infinite loop?) in " + f->name());
            }
            if constexpr (kBlockProf)
                ++bc->insts;

            const DecodedOperand *ops = pool + di.opBegin;
            unsigned bits = di.bits;
            uint64_t result = 0;

            // Forcing-policy check; mirrors the legacy short-circuit
            // call pattern exactly (including RNG consumption).
            auto shouldForce = [&]() {
                if (!di.speculative || blk.region < 0)
                    return false;
                if (policy_ == MisspecPolicy::ForceFirst) {
                    uint64_t &flag = fr[df.forcedBase() + blk.region];
                    if (flag)
                        return false;
                    flag = 1;
                    return true;
                }
                if (policy_ == MisspecPolicy::Random)
                    return rng_.next() % 8 == 0;
                return false;
            };

            switch (di.op) {
              case Opcode::Add: {
                uint64_t a = val(ops[0]);
                uint64_t b = val(ops[1]);
                uint64_t full = truncTo(a, bits) + truncTo(b, bits);
                if (di.speculative &&
                    (full > lowMask(bits) || shouldForce()))
                    goto misspeculate;
                result = truncTo(full, bits);
                break;
              }
              case Opcode::Sub: {
                uint64_t a = truncTo(val(ops[0]), bits);
                uint64_t b = truncTo(val(ops[1]), bits);
                if (di.speculative && (a < b || shouldForce()))
                    goto misspeculate;
                result = truncTo(a - b, bits);
                break;
              }
              case Opcode::Mul:
                result = truncTo(val(ops[0]) * val(ops[1]), bits);
                break;
              case Opcode::UDiv: {
                uint64_t b = truncTo(val(ops[1]), bits);
                if (b == 0) {
                    flushCounters();
                    fatal("division by zero in " + f->name());
                }
                result = truncTo(val(ops[0]), bits) / b;
                break;
              }
              case Opcode::SDiv: {
                int64_t b =
                    static_cast<int64_t>(sextFrom(val(ops[1]), bits));
                if (b == 0) {
                    flushCounters();
                    fatal("division by zero in " + f->name());
                }
                int64_t a =
                    static_cast<int64_t>(sextFrom(val(ops[0]), bits));
                result = truncTo(static_cast<uint64_t>(a / b), bits);
                break;
              }
              case Opcode::URem: {
                uint64_t b = truncTo(val(ops[1]), bits);
                if (b == 0) {
                    flushCounters();
                    fatal("remainder by zero in " + f->name());
                }
                result = truncTo(val(ops[0]), bits) % b;
                break;
              }
              case Opcode::SRem: {
                int64_t b =
                    static_cast<int64_t>(sextFrom(val(ops[1]), bits));
                if (b == 0) {
                    flushCounters();
                    fatal("remainder by zero in " + f->name());
                }
                int64_t a =
                    static_cast<int64_t>(sextFrom(val(ops[0]), bits));
                result = truncTo(static_cast<uint64_t>(a % b), bits);
                break;
              }
              case Opcode::And:
                result = truncTo(val(ops[0]) & val(ops[1]), bits);
                if (di.speculative && shouldForce()) {
                    // Logic never misspeculates in hardware; forcing
                    // policies still exercise the handler path.
                    goto misspeculate;
                }
                break;
              case Opcode::Or:
                result = truncTo(val(ops[0]) | val(ops[1]), bits);
                break;
              case Opcode::Xor:
                result = truncTo(val(ops[0]) ^ val(ops[1]), bits);
                break;
              case Opcode::Shl:
                result = shiftLeft(val(ops[0]), val(ops[1]), bits);
                break;
              case Opcode::LShr:
                result =
                    shiftRightLogical(val(ops[0]), val(ops[1]), bits);
                break;
              case Opcode::AShr:
                result =
                    shiftRightArith(val(ops[0]), val(ops[1]), bits);
                break;
              case Opcode::ICmp:
                result = evalCmp(di.pred, val(ops[0]), val(ops[1]),
                                 di.auxBits)
                             ? 1
                             : 0;
                break;
              case Opcode::Select:
                result = truncTo(val(ops[0]) != 0 ? val(ops[1])
                                                  : val(ops[2]),
                                 bits);
                break;
              case Opcode::ZExt:
                result = zextFrom(val(ops[0]), di.auxBits);
                break;
              case Opcode::SExt:
                result =
                    truncTo(sextFrom(val(ops[0]), di.auxBits), bits);
                break;
              case Opcode::Trunc: {
                uint64_t v = truncTo(val(ops[0]), di.auxBits);
                if (di.speculative &&
                    (v > lowMask(bits) || shouldForce()))
                    goto misspeculate;
                result = truncTo(v, bits);
                break;
              }
              case Opcode::Load: {
                auto addr = static_cast<uint32_t>(val(ops[0]));
                if (di.speculative) {
                    uint64_t v = loadMem(addr, di.auxBits);
                    if (v > lowMask(bits) || shouldForce())
                        goto misspeculate;
                    result = v;
                } else {
                    result = loadMem(addr, bits);
                }
                break;
              }
              case Opcode::Store: {
                auto addr = static_cast<uint32_t>(val(ops[0]));
                storeMem(addr, truncTo(val(ops[1]), di.auxBits),
                         di.auxBits);
                break;
              }
              case Opcode::Call: {
                // Args land directly in the callee's leading slots;
                // no temporary vector.
                ++stats_.calls;
                flushCounters();
                uint64_t argv[16];
                uint64_t *ap = argv;
                std::vector<uint64_t> spill;
                if (di.opCount > 16) {
                    spill.resize(di.opCount);
                    ap = spill.data();
                }
                for (uint16_t i = 0; i < di.opCount; ++i)
                    ap[i] = val(ops[i]);
                uint64_t r =
                    callDecoded(di.callee, ap, di.opCount, depth + 1);
                reloadCounters();
                // The frame stack may have grown (reallocated), and
                // decoding the callee may have grown the block cells.
                fr = dstack_.data() + base;
                if constexpr (kBlockProf)
                    bc = blockCells_.data() + df.blockBase() + cur;
                result = truncTo(r, bits);
                break;
              }
              case Opcode::Output:
                output_.push_back(truncTo(val(ops[0]), di.auxBits));
                ++stats_.outputs;
                break;
              case Opcode::Br:
                prev = cur;
                cur = di.target0;
                goto next_block;
              case Opcode::CondBr:
                prev = cur;
                cur = val(ops[0]) != 0 ? di.target0 : di.target1;
                goto next_block;
              case Opcode::Ret:
                flushCounters();
                return di.opCount ? truncTo(val(ops[0]), di.auxBits)
                                  : 0;
              case Opcode::Unreachable:
                flushCounters();
                panic("executed unreachable in " + f->name());
              case Opcode::Phi:
                panic("phi in decoded instruction stream");
            }

            if (di.dst >= 0) {
                fr[di.dst] = result;
                ++assigns;
                if constexpr (kProfile)
                    profileAssign(di.profileId, requiredBits(result));
                if constexpr (kHooks)
                    if (onAssign) {
                        flushCounters();
                        onAssign(di.inst, result);
                        reloadCounters();
                    }
            }
            continue;

          misspeculate:
            flushCounters();
            bsAssert(blk.handler >= 0,
                     "speculative op outside a region in " +
                         df.blockName(cur));
            ++stats_.misspeculations;
            if constexpr (kBlockProf)
                ++bc->misspecs;
            if constexpr (kHooks)
                if (onMisspec)
                    onMisspec(di.inst);
            reloadCounters();
            prev = cur;
            cur = static_cast<uint32_t>(blk.handler);
            goto next_block;
        }

        flushCounters();
        bsAssert(false, "block fell through: " + df.blockName(cur));
      next_block:;
    }
}

// --- Legacy engine ----------------------------------------------------

uint64_t
Interpreter::callFunction(Function *f, const std::vector<uint64_t> &args,
                          unsigned depth)
{
    if (depth > kMaxCallDepth)
        fatal("call depth exceeded in " + f->name());
    bsAssert(args.size() == f->numArgs(),
             "arity mismatch calling " + f->name());

    std::vector<uint64_t> frame(slotsOf(f), 0);
    for (size_t i = 0; i < args.size(); ++i)
        frame[f->valueId(f->arg(i))] =
            truncTo(args[i], f->arg(i)->type().bits);

    auto eval = [&](Value *v) -> uint64_t {
        switch (v->kind()) {
          case ValueKind::Constant:
            return static_cast<Constant *>(v)->value();
          case ValueKind::GlobalRef:
            return static_cast<GlobalRef *>(v)->global()->address();
          default:
            return frame[f->valueId(v)];
        }
    };

    // Block -> region map for misspeculation routing, built once per
    // function and cached (hoisted out of the per-call path).
    const auto &region_of = legacyInfo(f).regionOf;
    auto regionAt = [&](const BasicBlock *bb) -> SpecRegion * {
        auto it = region_of.find(bb);
        return it == region_of.end() ? nullptr : it->second;
    };

    // Regions already force-misspeculated under ForceFirst.
    std::set<const SpecRegion *> forced;

    BasicBlock *bb = f->entry();
    BasicBlock *prev = nullptr;

    for (;;) {
        // Phase 1: evaluate all phis in parallel against `prev`.
        auto phis = bb->phis();
        if (!phis.empty()) {
            std::vector<uint64_t> vals(phis.size());
            for (size_t p = 0; p < phis.size(); ++p) {
                Instruction *phi = phis[p];
                bool found = false;
                for (size_t i = 0; i < phi->numOperands(); ++i) {
                    if (phi->blockOperand(i) == prev) {
                        vals[p] = truncTo(eval(phi->operand(i)),
                                          phi->type().bits);
                        found = true;
                        break;
                    }
                }
                if (!found)
                    panic("phi has no entry for predecessor " +
                          (prev ? prev->name() : std::string("<entry>")) +
                          " in " + bb->name());
                ++stats_.steps;
                ++stats_.intAssignments;
            }
            for (size_t p = 0; p < phis.size(); ++p) {
                frame[f->valueId(phis[p])] = vals[p];
                if (onAssign)
                    onAssign(phis[p], vals[p]);
            }
        }

        // Phase 2: straight-line execution.
        bool transferred = false;
        for (auto it = bb->firstNonPhi(); it != bb->insts().end(); ++it) {
            Instruction *inst = it->get();
            if (++stats_.steps > fuel_)
                fatal("out of fuel (infinite loop?) in " + f->name());

            // Misspeculation routing shared by all speculative ops.
            auto misspeculate = [&]() {
                SpecRegion *sr = regionAt(bb);
                bsAssert(sr != nullptr,
                         "speculative op outside a region in " +
                         bb->name());
                ++stats_.misspeculations;
                if (onMisspec)
                    onMisspec(inst);
                prev = bb;
                bb = sr->handler;
                transferred = true;
            };

            // Under forcing policies, misspeculate even when the value
            // would fit.
            auto shouldForce = [&]() {
                SpecRegion *sr;
                if (!inst->isSpeculative() || !(sr = regionAt(bb)))
                    return false;
                if (policy_ == MisspecPolicy::ForceFirst)
                    return forced.insert(sr).second;
                if (policy_ == MisspecPolicy::Random)
                    return rng_.next() % 8 == 0;
                return false;
            };

            unsigned bits = inst->type().bits;
            uint64_t result = 0;
            bool writes = !inst->type().isVoid();

            switch (inst->op()) {
              case Opcode::Add: {
                uint64_t a = eval(inst->operand(0));
                uint64_t b = eval(inst->operand(1));
                uint64_t full = truncTo(a, bits) + truncTo(b, bits);
                if (inst->isSpeculative() &&
                    (full > lowMask(bits) || shouldForce())) {
                    misspeculate();
                    break;
                }
                result = truncTo(full, bits);
                break;
              }
              case Opcode::Sub: {
                uint64_t a = truncTo(eval(inst->operand(0)), bits);
                uint64_t b = truncTo(eval(inst->operand(1)), bits);
                if (inst->isSpeculative() && (a < b || shouldForce())) {
                    misspeculate();
                    break;
                }
                result = truncTo(a - b, bits);
                break;
              }
              case Opcode::Mul:
                result = truncTo(eval(inst->operand(0)) *
                                 eval(inst->operand(1)), bits);
                break;
              case Opcode::UDiv: {
                uint64_t b = truncTo(eval(inst->operand(1)), bits);
                if (b == 0)
                    fatal("division by zero in " + f->name());
                result = truncTo(eval(inst->operand(0)), bits) / b;
                break;
              }
              case Opcode::SDiv: {
                int64_t b = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(1)), bits));
                if (b == 0)
                    fatal("division by zero in " + f->name());
                int64_t a = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(0)), bits));
                result = truncTo(static_cast<uint64_t>(a / b), bits);
                break;
              }
              case Opcode::URem: {
                uint64_t b = truncTo(eval(inst->operand(1)), bits);
                if (b == 0)
                    fatal("remainder by zero in " + f->name());
                result = truncTo(eval(inst->operand(0)), bits) % b;
                break;
              }
              case Opcode::SRem: {
                int64_t b = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(1)), bits));
                if (b == 0)
                    fatal("remainder by zero in " + f->name());
                int64_t a = static_cast<int64_t>(
                    sextFrom(eval(inst->operand(0)), bits));
                result = truncTo(static_cast<uint64_t>(a % b), bits);
                break;
              }
              case Opcode::And:
                result = truncTo(eval(inst->operand(0)) &
                                 eval(inst->operand(1)), bits);
                if (inst->isSpeculative() && shouldForce()) {
                    // Logic never misspeculates in hardware; forcing
                    // policies still exercise the handler path.
                    misspeculate();
                }
                break;
              case Opcode::Or:
                result = truncTo(eval(inst->operand(0)) |
                                 eval(inst->operand(1)), bits);
                break;
              case Opcode::Xor:
                result = truncTo(eval(inst->operand(0)) ^
                                 eval(inst->operand(1)), bits);
                break;
              case Opcode::Shl:
                result = shiftLeft(eval(inst->operand(0)),
                                   eval(inst->operand(1)), bits);
                break;
              case Opcode::LShr:
                result = shiftRightLogical(eval(inst->operand(0)),
                                           eval(inst->operand(1)), bits);
                break;
              case Opcode::AShr:
                result = shiftRightArith(eval(inst->operand(0)),
                                         eval(inst->operand(1)), bits);
                break;
              case Opcode::ICmp:
                result = evalCmp(inst->pred(), eval(inst->operand(0)),
                                 eval(inst->operand(1)),
                                 inst->operand(0)->type().bits) ? 1 : 0;
                break;
              case Opcode::Select:
                result = truncTo(eval(inst->operand(0)) != 0
                                     ? eval(inst->operand(1))
                                     : eval(inst->operand(2)), bits);
                break;
              case Opcode::ZExt:
                result = zextFrom(eval(inst->operand(0)),
                                  inst->operand(0)->type().bits);
                break;
              case Opcode::SExt:
                result = truncTo(sextFrom(eval(inst->operand(0)),
                                          inst->operand(0)->type().bits),
                                 bits);
                break;
              case Opcode::Trunc: {
                uint64_t v = truncTo(eval(inst->operand(0)),
                                     inst->operand(0)->type().bits);
                if (inst->isSpeculative() &&
                    (v > lowMask(bits) || shouldForce())) {
                    misspeculate();
                    break;
                }
                result = truncTo(v, bits);
                break;
              }
              case Opcode::Load: {
                auto addr =
                    static_cast<uint32_t>(eval(inst->operand(0)));
                if (inst->isSpeculative()) {
                    unsigned orig = inst->specOrigBits();
                    bsAssert(orig > bits, "spec load with no orig width");
                    uint64_t v = loadMem(addr, orig);
                    if (v > lowMask(bits) || shouldForce()) {
                        misspeculate();
                        break;
                    }
                    result = v;
                } else {
                    result = loadMem(addr, bits);
                }
                break;
              }
              case Opcode::Store: {
                auto addr =
                    static_cast<uint32_t>(eval(inst->operand(0)));
                Value *v = inst->operand(1);
                storeMem(addr, truncTo(eval(v), v->type().bits),
                         v->type().bits);
                break;
              }
              case Opcode::Call: {
                std::vector<uint64_t> call_args;
                for (Value *a : inst->operands())
                    call_args.push_back(eval(a));
                ++stats_.calls;
                result = callFunction(inst->callee(), call_args,
                                      depth + 1);
                result = truncTo(result, bits ? bits : 64);
                break;
              }
              case Opcode::Output: {
                Value *v = inst->operand(0);
                output_.push_back(truncTo(eval(v), v->type().bits));
                ++stats_.outputs;
                break;
              }
              case Opcode::Br:
                prev = bb;
                bb = inst->blockOperand(0);
                transferred = true;
                break;
              case Opcode::CondBr:
                prev = bb;
                bb = eval(inst->operand(0)) != 0 ? inst->blockOperand(0)
                                                 : inst->blockOperand(1);
                transferred = true;
                break;
              case Opcode::Ret:
                return inst->numOperands()
                           ? truncTo(eval(inst->operand(0)),
                                     inst->operand(0)->type().bits)
                           : 0;
              case Opcode::Unreachable:
                panic("executed unreachable in " + f->name());
              case Opcode::Phi:
                panic("phi after firstNonPhi");
            }

            if (transferred)
                break;

            if (writes) {
                frame[f->valueId(inst)] = result;
                ++stats_.intAssignments;
                if (onAssign)
                    onAssign(inst, result);
            }
        }

        bsAssert(transferred, "block fell through: " + bb->name());
    }
}

} // namespace bitspec
