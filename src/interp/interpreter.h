/**
 * @file
 * Reference interpreter for the BitSpec IR.
 *
 * Serves three roles:
 *  1. Golden model — simulated machine executions must match its output.
 *  2. Statistics engine — dynamic instruction counts and per-assignment
 *     hooks feed the bitwidth profiler and the Fig. 1/5 histograms.
 *  3. Speculative semantics — squeezed programs execute with Table-1
 *     misspeculation behaviour (redirect to the region handler), which
 *     lets the squeezer be validated before any machine code exists.
 */

#ifndef BITSPEC_INTERP_INTERPRETER_H_
#define BITSPEC_INTERP_INTERPRETER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "ir/module.h"
#include "support/rng.h"

namespace bitspec
{

/** How speculative instructions behave during interpretation. */
enum class MisspecPolicy
{
    /** Table-1 semantics: misspeculate when the value does not fit. */
    Hardware,
    /** Misspeculate at the first opportunity in every region entered
     *  (plus whenever required); exercises Theorem 3.2. */
    ForceFirst,
    /** Misspeculate randomly with probability 1/8 (plus whenever
     *  required); randomised correctness testing. */
    Random,
};

/** Aggregate execution statistics. */
struct InterpStats
{
    uint64_t steps = 0;          ///< All executed instructions.
    uint64_t intAssignments = 0; ///< Executed integer-producing instrs.
    uint64_t misspeculations = 0;
    uint64_t calls = 0;
    uint64_t outputs = 0;
};

/** Executes IR modules against a flat little-endian memory. */
class Interpreter
{
  public:
    static constexpr size_t kDefaultMemBytes = 1 << 22;
    static constexpr uint64_t kDefaultFuel = 400'000'000;

    explicit Interpreter(Module &m, size_t mem_bytes = kDefaultMemBytes);

    /** Re-copy global initialisers into memory and clear outputs/stats. */
    void reset();

    /**
     * Run @p fn (default "main") with integer @p args; returns the
     * (zero-extended) return value. Throws FatalError when out of fuel.
     */
    uint64_t run(const std::string &fn = "main",
                 const std::vector<uint64_t> &args = {});

    const InterpStats &stats() const { return stats_; }
    const std::vector<uint64_t> &output() const { return output_; }

    /** FNV-1a hash of the output stream; the cross-model checksum. */
    uint64_t outputChecksum() const;

    void setFuel(uint64_t fuel) { fuel_ = fuel; }
    void setMisspecPolicy(MisspecPolicy p) { policy_ = p; }
    void setRandomSeed(uint64_t seed) { rng_ = Rng(seed); }

    /**
     * Per-assignment hook: called with every executed integer-producing
     * instruction and the value produced. Used by the profiler and the
     * bitwidth histogram benches.
     */
    std::function<void(const Instruction *, uint64_t)> onAssign;

    /** Called on every misspeculation with the faulting instruction. */
    std::function<void(const Instruction *)> onMisspec;

    /** @name Raw memory access (for loading workload inputs). */
    /// @{
    uint64_t loadMem(uint32_t addr, unsigned bits) const;
    void storeMem(uint32_t addr, uint64_t value, unsigned bits);
    /// @}

  private:
    uint64_t callFunction(Function *f, const std::vector<uint64_t> &args,
                          unsigned depth);
    unsigned slotsOf(Function *f);

    Module &module_;
    std::vector<uint8_t> memory_;
    std::vector<uint64_t> output_;
    InterpStats stats_;
    uint64_t fuel_ = kDefaultFuel;
    MisspecPolicy policy_ = MisspecPolicy::Hardware;
    Rng rng_{0x5eed};
    std::map<Function *, unsigned> slotCache_;
};

} // namespace bitspec

#endif // BITSPEC_INTERP_INTERPRETER_H_
