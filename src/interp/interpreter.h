/**
 * @file
 * Reference interpreter for the BitSpec IR.
 *
 * Serves three roles:
 *  1. Golden model — simulated machine executions must match its output.
 *  2. Statistics engine — dynamic instruction counts and per-assignment
 *     hooks feed the bitwidth profiler and the Fig. 1/5 histograms.
 *  3. Speculative semantics — squeezed programs execute with Table-1
 *     misspeculation behaviour (redirect to the region handler), which
 *     lets the squeezer be validated before any machine code exists.
 *
 * Two execution engines share these semantics bit-for-bit:
 *  - Decoded (default): each Function is flattened once into a
 *    DecodedFunction (see decode.h) and executed by an
 *    index-dispatched loop with no per-instruction operand resolution,
 *    no per-block map lookups and no per-block allocation. Hook
 *    dispatch is hoisted out of the loop, so hook-free runs pay
 *    nothing for instrumentation.
 *  - Legacy: the original tree-walking loop, kept as a differential
 *    reference.
 */

#ifndef BITSPEC_INTERP_INTERPRETER_H_
#define BITSPEC_INTERP_INTERPRETER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/module.h"
#include "support/misspec.h"
#include "support/rng.h"

namespace bitspec
{

class DecodedFunction;

/** Which execution engine Interpreter::run uses. */
enum class ExecEngine
{
    /** Pre-decoded, index-dispatched engine (fast path). */
    Decoded,
    /** Original tree-walking engine (differential reference). */
    Legacy,
};

/** Aggregate execution statistics. */
struct InterpStats
{
    uint64_t steps = 0;          ///< All executed instructions.
    uint64_t intAssignments = 0; ///< Executed integer-producing instrs.
    uint64_t misspeculations = 0;
    uint64_t calls = 0;
    uint64_t outputs = 0;

    bool operator==(const InterpStats &) const = default;
};

/** Executes IR modules against a flat little-endian memory. */
class Interpreter
{
  public:
    static constexpr size_t kDefaultMemBytes = 1 << 22;
    static constexpr uint64_t kDefaultFuel = 400'000'000;

    explicit Interpreter(Module &m, size_t mem_bytes = kDefaultMemBytes);
    ~Interpreter();

    /** Re-copy global initialisers into memory and clear outputs/stats. */
    void reset();

    /**
     * Run @p fn (default "main") with integer @p args; returns the
     * (zero-extended) return value. Throws FatalError when out of fuel.
     */
    uint64_t run(const std::string &fn = "main",
                 const std::vector<uint64_t> &args = {});

    const InterpStats &stats() const { return stats_; }
    const std::vector<uint64_t> &output() const { return output_; }

    /** FNV-1a hash of the output stream; the cross-model checksum. */
    uint64_t outputChecksum() const;

    void setFuel(uint64_t fuel) { fuel_ = fuel; }
    void setMisspecPolicy(MisspecPolicy p) { policy_ = p; }
    void setRandomSeed(uint64_t seed) { rng_ = Rng(seed); }

    void setEngine(ExecEngine e) { engine_ = e; }
    ExecEngine engine() const { return engine_; }

    /**
     * Drop every cached per-function artefact: decoded functions,
     * frame-slot counts and legacy region maps, plus accumulated
     * value-profile data (drain it first via valueProfile()).
     *
     * Must be called after a transform mutates the module — decoded
     * functions bake in operand slots, block indices and global
     * addresses, so executing a stale cache is undefined. System calls
     * this after the expander and squeezer run.
     */
    void invalidate();

    /** @name Built-in value profile (decoded engine)
     * The profiler's hot path: instead of an onAssign std::function
     * per assignment, the decoded engine accumulates min/max/sum/count
     * of requiredBits() into dense arrays indexed by decoded
     * instruction id; the id -> Instruction mapping is applied only at
     * the edge, in valueProfile().
     */
    /// @{
    void enableValueProfile() { profileEnabled_ = true; }

    /**
     * Differential soundness check for the known-bits analysis: every
     * profiled assignment's observed RequiredBits must stay within the
     * static upper bound of its instruction (computed per function at
     * decode time). A violation means the forward analysis is unsound
     * and aborts execution. Implies enableValueProfile(); must be
     * enabled before the first run (bounds are baked at decode).
     */
    void
    enableStaticBoundsCheck()
    {
        boundsCheck_ = true;
        profileEnabled_ = true;
    }

    struct ValueProfileEntry
    {
        const Instruction *inst;
        unsigned minBits;
        unsigned maxBits;
        uint64_t sumBits;
        uint64_t count;
    };

    /** Executed assignment sites with accumulated bit statistics. */
    std::vector<ValueProfileEntry> valueProfile() const;

    /** As valueProfile(), but zeroes the accumulators so repeated
     *  training runs are not double-counted. */
    std::vector<ValueProfileEntry> takeValueProfile();
    /// @}

    /**
     * Per-assignment hook: called with every executed integer-producing
     * instruction and the value produced. Used by the profiler and the
     * bitwidth histogram benches.
     */
    std::function<void(const Instruction *, uint64_t)> onAssign;

    /** Called on every misspeculation with the faulting instruction. */
    std::function<void(const Instruction *)> onMisspec;

    /** @name Per-block execution profile (decoded engine)
     * The heat profiler's interpreter-side counterpart: the decoded
     * engine bumps dense per-block cells (entries, executed
     * instructions, misspeculations) indexed by
     * DecodedFunction::blockBase() + block index. Dispatch is a
     * template bool hoisted out of the loop, so profile-off runs pay
     * nothing. Invariants (ctest-enforced): summed insts ==
     * stats().steps and summed misspecs == stats().misspeculations.
     * Decoded engine only; the legacy engine ignores the flag.
     */
    /// @{
    void setBlockProfile(bool on) { blockProfileEnabled_ = on; }
    bool blockProfileEnabled() const { return blockProfileEnabled_; }

    struct BlockProfileEntry
    {
        Function *function = nullptr;
        uint32_t blockIndex = 0;
        std::string blockName;
        uint64_t entries = 0;
        uint64_t insts = 0;
        uint64_t misspecs = 0;
    };

    /** Executed blocks with accumulated counts (decode order). */
    std::vector<BlockProfileEntry> blockProfile() const;
    /// @}

    /** @name Raw memory access (for loading workload inputs). */
    /// @{
    uint64_t loadMem(uint32_t addr, unsigned bits) const;
    void storeMem(uint32_t addr, uint64_t value, unsigned bits);
    /// @}

  private:
    /** Legacy per-function info, hoisted out of callFunction. */
    struct LegacyFunctionInfo
    {
        std::unordered_map<const BasicBlock *, SpecRegion *> regionOf;
    };

    /** Dense value-profile accumulator cell. */
    struct ProfCell
    {
        unsigned minBits = 64;
        unsigned maxBits = 1;
        uint64_t sumBits = 0;
        uint64_t count = 0;
    };

    uint64_t callFunction(Function *f, const std::vector<uint64_t> &args,
                          unsigned depth);
    uint64_t callDecoded(Function *f, const uint64_t *args, size_t nargs,
                         unsigned depth);
    template <bool kHooks, bool kProfile, bool kBlockProf>
    uint64_t execDecoded(const DecodedFunction &df, size_t base,
                         unsigned depth);
    const DecodedFunction &decodedFor(Function *f);
    const LegacyFunctionInfo &legacyInfo(Function *f);
    unsigned slotsOf(Function *f);

    void
    profileAssign(uint32_t id, unsigned bits)
    {
        ProfCell &c = prof_[id];
        c.minBits = std::min(c.minBits, bits);
        c.maxBits = std::max(c.maxBits, bits);
        c.sumBits += bits;
        ++c.count;
        if (boundsCheck_ && bits > staticBound_[id])
            boundsViolation(id, bits);
    }

    [[noreturn]] void boundsViolation(uint32_t id, unsigned bits) const;

    Module &module_;
    std::vector<uint8_t> memory_;
    std::vector<uint64_t> output_;
    InterpStats stats_;
    uint64_t fuel_ = kDefaultFuel;
    MisspecPolicy policy_ = MisspecPolicy::Hardware;
    ExecEngine engine_ = ExecEngine::Decoded;
    Rng rng_{0x5eed};

    std::unordered_map<Function *, unsigned> slotCache_;
    std::unordered_map<Function *, std::unique_ptr<DecodedFunction>>
        decodeCache_;
    std::unordered_map<Function *, LegacyFunctionInfo> legacyCache_;

    /** Decoded-engine frame stack (slot storage for the call chain). */
    std::vector<uint64_t> dstack_;
    size_t dstackTop_ = 0;

    bool profileEnabled_ = false;
    std::vector<ProfCell> prof_;
    std::vector<const Instruction *> profInst_;

    /** Dense per-block profile cell. */
    struct BlockCell
    {
        uint64_t entries = 0;
        uint64_t insts = 0;
        uint64_t misspecs = 0;
    };

    bool blockProfileEnabled_ = false;
    /** Cells for every decoded block; allocated at decode time so the
     *  profile can be toggled between runs without re-decoding. */
    std::vector<BlockCell> blockCells_;
    std::vector<std::pair<Function *, uint32_t>> blockOf_;

    /** Static RequiredBits ceiling per profiled site (64 when the
     *  bounds check is off at decode time). */
    bool boundsCheck_ = false;
    std::vector<unsigned> staticBound_;
};

} // namespace bitspec

#endif // BITSPEC_INTERP_INTERPRETER_H_
