#include "interp/decode.h"

#include <algorithm>
#include <unordered_map>

#include "ir/module.h"
#include "support/error.h"

namespace bitspec
{

namespace
{

/**
 * Order the moves of one phi parallel copy so sequential execution
 * produces the parallel result. A move may run once no *other* pending
 * move still reads its destination's old value. When every pending move
 * is blocked the remainder is a set of disjoint permutation cycles
 * (destinations are unique and each blocked move is held by exactly one
 * reader); a cycle is broken by saving one destination to the scratch
 * slot and redirecting its reader there.
 */
std::vector<PhiMove>
sequentialize(std::vector<PhiMove> moves, int32_t scratch)
{
    std::vector<PhiMove> out;
    out.reserve(moves.size());
    std::vector<char> done(moves.size(), 0);
    size_t remaining = moves.size();

    auto blocked = [&](size_t i) {
        for (size_t j = 0; j < moves.size(); ++j)
            if (j != i && !done[j] && moves[j].src.slot == moves[i].dst)
                return true;
        return false;
    };

    while (remaining) {
        bool progress = false;
        for (size_t i = 0; i < moves.size(); ++i) {
            if (done[i] || blocked(i))
                continue;
            out.push_back(moves[i]);
            done[i] = 1;
            --remaining;
            progress = true;
        }
        if (progress)
            continue;
        // All pending moves are cyclic: break one cycle via scratch.
        size_t i = 0;
        while (done[i])
            ++i;
        PhiMove save;
        save.dst = scratch;
        save.src.slot = moves[i].dst;
        save.bits = 64; // Raw copy: preserve the old value exactly.
        out.push_back(save);
        for (size_t j = 0; j < moves.size(); ++j)
            if (j != i && !done[j] && moves[j].src.slot == moves[i].dst)
                moves[j].src.slot = scratch;
    }
    return out;
}

} // namespace

const std::string &
DecodedFunction::blockName(uint32_t i) const
{
    return blockPtrs_[i]->name();
}

std::unique_ptr<DecodedFunction>
DecodedFunction::decode(Function *f, uint32_t profile_base)
{
    std::unique_ptr<DecodedFunction> df(new DecodedFunction);
    df->fn_ = f;
    df->numSlots_ = f->renumber();

    for (size_t i = 0; i < f->numArgs(); ++i)
        df->argBits_.push_back(f->arg(i)->type().bits);

    std::unordered_map<const BasicBlock *, uint32_t> index;
    for (const auto &bb : f->blocks()) {
        index[bb.get()] = static_cast<uint32_t>(df->blockPtrs_.size());
        df->blockPtrs_.push_back(bb.get());
    }

    auto decodeOperand = [&](Value *v) -> DecodedOperand {
        DecodedOperand o;
        switch (v->kind()) {
          case ValueKind::Constant:
            o.imm = static_cast<Constant *>(v)->value();
            break;
          case ValueKind::GlobalRef:
            o.imm = static_cast<GlobalRef *>(v)->global()->address();
            break;
          default:
            o.slot = static_cast<int32_t>(f->valueId(v));
            break;
        }
        return o;
    };

    uint32_t next_profile = profile_base;
    auto newProfileId = [&](const Instruction *inst) {
        df->profInsts_.push_back(inst);
        return next_profile++;
    };

    df->blocks_.resize(df->blockPtrs_.size());

    for (uint32_t bi = 0; bi < df->blockPtrs_.size(); ++bi) {
        const BasicBlock *bb = df->blockPtrs_[bi];
        DecodedBlock &blk = df->blocks_[bi];

        // Phi move lists, one per predecessor mentioned by any phi.
        auto phis = bb->phis();
        if (!phis.empty()) {
            blk.hasPhis = true;
            std::vector<BasicBlock *> preds;
            for (const Instruction *phi : phis)
                for (BasicBlock *in : phi->blockOperands())
                    if (std::find(preds.begin(), preds.end(), in) ==
                        preds.end())
                        preds.push_back(in);

            std::vector<uint32_t> phi_ids;
            for (const Instruction *phi : phis)
                phi_ids.push_back(newProfileId(phi));

            blk.phiBegin = static_cast<uint32_t>(df->phiLists_.size());
            for (BasicBlock *pred : preds) {
                std::vector<PhiMove> moves;
                bool complete = true;
                for (size_t p = 0; p < phis.size(); ++p) {
                    Instruction *phi = phis[p];
                    bool found = false;
                    for (size_t i = 0; i < phi->numOperands(); ++i) {
                        if (phi->blockOperand(i) != pred)
                            continue;
                        PhiMove m;
                        m.dst =
                            static_cast<int32_t>(f->valueId(phi));
                        m.src = decodeOperand(phi->operand(i));
                        m.bits =
                            static_cast<uint8_t>(phi->type().bits);
                        m.profileId = phi_ids[p];
                        m.phi = phi;
                        moves.push_back(m);
                        found = true;
                        break;
                    }
                    if (!found) {
                        // A phi lacks an entry for this edge; arriving
                        // from `pred` must panic at run time, so emit
                        // no list for it.
                        complete = false;
                        break;
                    }
                }
                if (!complete)
                    continue;
                moves = sequentialize(
                    std::move(moves),
                    static_cast<int32_t>(df->scratchSlot()));
                PhiList pl;
                pl.pred = index.at(pred);
                pl.begin = static_cast<uint32_t>(df->phiMoves_.size());
                pl.count = static_cast<uint32_t>(moves.size());
                df->phiMoves_.insert(df->phiMoves_.end(), moves.begin(),
                                     moves.end());
                df->phiLists_.push_back(pl);
            }
            blk.phiListCount =
                static_cast<uint32_t>(df->phiLists_.size()) -
                blk.phiBegin;
        }

        // Straight-line instructions.
        blk.instBegin = static_cast<uint32_t>(df->insts_.size());
        BasicBlock *mbb = const_cast<BasicBlock *>(bb);
        for (auto it = mbb->firstNonPhi(); it != mbb->insts().end();
             ++it) {
            Instruction *inst = it->get();
            DecodedInst di;
            di.op = inst->op();
            di.pred = inst->pred();
            di.bits = static_cast<uint8_t>(inst->type().bits);
            di.speculative = inst->isSpeculative();
            di.inst = inst;
            di.opBegin = static_cast<uint32_t>(df->pool_.size());
            di.opCount = static_cast<uint16_t>(inst->numOperands());
            for (Value *v : inst->operands())
                df->pool_.push_back(decodeOperand(v));

            bool writes = !inst->type().isVoid();
            switch (inst->op()) {
              case Opcode::ICmp:
                di.auxBits = static_cast<uint8_t>(
                    inst->operand(0)->type().bits);
                break;
              case Opcode::ZExt:
              case Opcode::SExt:
              case Opcode::Trunc:
                di.auxBits = static_cast<uint8_t>(
                    inst->operand(0)->type().bits);
                break;
              case Opcode::Load:
                if (inst->isSpeculative()) {
                    unsigned orig = inst->specOrigBits();
                    bsAssert(orig > inst->type().bits,
                             "spec load with no orig width");
                    di.auxBits = static_cast<uint8_t>(orig);
                }
                break;
              case Opcode::Store:
                di.auxBits = static_cast<uint8_t>(
                    inst->operand(1)->type().bits);
                break;
              case Opcode::Output:
                di.auxBits = static_cast<uint8_t>(
                    inst->operand(0)->type().bits);
                break;
              case Opcode::Ret:
                if (inst->numOperands())
                    di.auxBits = static_cast<uint8_t>(
                        inst->operand(0)->type().bits);
                break;
              case Opcode::Call:
                di.callee = inst->callee();
                bsAssert(di.callee != nullptr,
                         "call without callee in " + f->name());
                bsAssert(di.callee->numArgs() == inst->numOperands(),
                         "arity mismatch calling " +
                             di.callee->name());
                // Legacy semantics: void calls truncate to 64 bits.
                di.bits = static_cast<uint8_t>(
                    inst->type().bits ? inst->type().bits : 64);
                break;
              case Opcode::Br:
                di.target0 = index.at(inst->blockOperand(0));
                break;
              case Opcode::CondBr:
                di.target0 = index.at(inst->blockOperand(0));
                di.target1 = index.at(inst->blockOperand(1));
                break;
              default:
                break;
            }
            if (writes) {
                di.dst = static_cast<int32_t>(f->valueId(inst));
                di.profileId = newProfileId(inst);
            }
            df->insts_.push_back(di);
        }
        blk.instCount =
            static_cast<uint32_t>(df->insts_.size()) - blk.instBegin;
    }

    // Region membership and handlers, replacing the per-call
    // std::map<const BasicBlock*, SpecRegion*> of the legacy engine.
    // Later regions overwrite earlier ones for shared members, matching
    // the legacy map-construction order.
    int32_t region_ord = 0;
    for (const auto &sr : f->specRegions()) {
        int32_t handler_idx = -1;
        if (sr->handler) {
            auto it = index.find(sr->handler);
            bsAssert(it != index.end(),
                     "region handler not in function: " + f->name());
            handler_idx = static_cast<int32_t>(it->second);
        }
        for (BasicBlock *member : sr->blocks) {
            auto it = index.find(member);
            bsAssert(it != index.end(),
                     "region member not in function: " + f->name());
            df->blocks_[it->second].handler = handler_idx;
            df->blocks_[it->second].region = region_ord;
        }
        ++region_ord;
    }

    df->frameSize_ = df->numSlots_ + 1 +
                     static_cast<unsigned>(f->specRegions().size());
    return df;
}

} // namespace bitspec
