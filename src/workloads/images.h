/**
 * @file
 * Synthetic image generator standing in for the BSDS500 photographs
 * of the paper's RQ6 deep dive (Fig. 16) and for the susan inputs.
 *
 * Images are a seeded mixture of smooth gradients, elliptical blobs
 * and salt noise — enough structure for USAN edge/corner responses to
 * vary meaningfully between seeds.
 */

#ifndef BITSPEC_WORKLOADS_IMAGES_H_
#define BITSPEC_WORKLOADS_IMAGES_H_

#include <cstdint>
#include <vector>

namespace bitspec
{

/** Generate a @p w x @p h 8-bit grayscale image for @p seed. */
std::vector<uint8_t> generateImage(uint64_t seed, unsigned w,
                                   unsigned h);

} // namespace bitspec

#endif // BITSPEC_WORKLOADS_IMAGES_H_
