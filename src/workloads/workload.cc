#include "workloads/workload.h"

#include "support/error.h"

namespace bitspec
{

const Workload &
getWorkload(const std::string &name)
{
    for (const Workload &w : mibenchSuite())
        if (w.name == name)
            return w;
    fatal("unknown workload: " + name);
}

} // namespace bitspec
