/**
 * @file
 * The 14 MiBench-style kernels of the paper's evaluation (§4.1),
 * re-implemented in the BitSpec C subset with deterministic input
 * generators replacing the MiBench data files.
 *
 * Value-range structure mirrors the paper's observations: CRC32 line
 * lengths are mostly byte-sized with >255 outliers (§3), stringsearch
 * pattern/string lengths stay within 12/56 (§3 Listing 1), rijndael
 * and blowfish are dominated by `x & 0xff` byte extraction (RQ3), and
 * sha's rotations defeat static narrowing (§2.2).
 */

#include "workloads/workload.h"

#include <cmath>

#include "support/error.h"
#include "support/rng.h"
#include "workloads/images.h"

namespace bitspec
{

namespace
{

void
setScalar(Module &m, const std::string &name, uint64_t v)
{
    Global *g = m.getGlobal(name);
    bsAssert(g != nullptr, "workload global missing: " + name);
    g->setElem(0, v);
}

Global *
glob(Module &m, const std::string &name)
{
    Global *g = m.getGlobal(name);
    bsAssert(g != nullptr, "workload global missing: " + name);
    return g;
}

// ===================== CRC32 =====================

const char *kCrc32Src = R"(
u8 text[8192];
u32 nbytes;
u32 crctab[256];

void mktab() {
    for (u32 i = 0; i < 256; i++) {
        u32 c = i;
        for (u32 k = 0; k < 8; k++) {
            if (c & 1) c = 0xEDB88320 ^ (c >> 1);
            else c = c >> 1;
        }
        crctab[i] = c;
    }
}

u32 main() {
    mktab();
    u32 pos = 0;
    u32 total = 0;
    while (pos < nbytes) {
        u32 crc = 0xFFFFFFFF;
        u32 len = 0;
        while (pos < nbytes && text[pos] != '\n') {
            crc = crctab[(crc ^ text[pos]) & 0xff] ^ (crc >> 8);
            pos++;
            len++;
        }
        pos++;
        out(crc ^ 0xFFFFFFFF);
        total = total ^ crc ^ len;
    }
    return total;
}
)";

void
crc32Input(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xc7c32);
    Global *text = glob(m, "text");
    size_t pos = 0;
    // Line lengths: mostly well under 256, with outliers past it —
    // the paper reports 0..2729 with mean 145.8 for the large input.
    while (pos + 1300 < text->elemCount()) {
        uint64_t len = rng.nextBelow(10) == 0
                           ? rng.nextRange(256, 1200)
                           : rng.nextRange(5, 220);
        for (uint64_t i = 0; i < len; ++i)
            text->setElem(pos++, ' ' + rng.nextBelow(94));
        text->setElem(pos++, '\n');
    }
    setScalar(m, "nbytes", pos);
}

// ===================== SHA-1 =====================

const char *kShaSrc = R"(
u8 data[4096];
u32 w[80];
u32 hs[5];

u32 rol(u32 x, u32 n) { return (x << n) | (x >> (32 - n)); }

u32 main() {
    hs[0] = 0x67452301; hs[1] = 0xEFCDAB89; hs[2] = 0x98BADCFE;
    hs[3] = 0x10325476; hs[4] = 0xC3D2E1F0;
    for (u32 chunk = 0; chunk < 64; chunk++) {
        u32 base = chunk * 64;
        for (u32 i = 0; i < 16; i++) {
            u32 o = base + i * 4;
            w[i] = (data[o] << 24) | (data[o + 1] << 16)
                 | (data[o + 2] << 8) | data[o + 3];
        }
        for (u32 i = 16; i < 80; i++)
            w[i] = rol(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16], 1);
        u32 a = hs[0]; u32 b = hs[1]; u32 c = hs[2];
        u32 d = hs[3]; u32 e = hs[4];
        for (u32 i = 0; i < 80; i++) {
            u32 f = 0;
            u32 k = 0;
            if (i < 20) { f = (b & c) | ((~b) & d); k = 0x5A827999; }
            else if (i < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
            else if (i < 60) {
                f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC;
            } else { f = b ^ c ^ d; k = 0xCA62C1D6; }
            u32 tmp = rol(a, 5) + f + e + k + w[i];
            e = d; d = c; c = rol(b, 30); b = a; a = tmp;
        }
        hs[0] += a; hs[1] += b; hs[2] += c; hs[3] += d; hs[4] += e;
    }
    out(hs[0]); out(hs[1]); out(hs[2]); out(hs[3]); out(hs[4]);
    return hs[0] ^ hs[4];
}
)";

void
shaInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0x5aa1);
    Global *data = glob(m, "data");
    for (size_t i = 0; i < data->elemCount(); ++i)
        data->setElem(i, rng.nextBelow(256));
}

// ===================== Rijndael (AES-128) =====================

const char *kRijndaelSrc = R"(
u8 sbox[256];
u8 xt[256];
u8 rk[176];
u8 key[16];
u8 pt[1024];
u8 ct[1024];
u8 st[16];

void keyexpand() {
    for (u32 i = 0; i < 16; i++) rk[i] = key[i];
    u32 rcon = 1;
    for (u32 i = 16; i < 176; i += 4) {
        u8 t0 = rk[i - 4]; u8 t1 = rk[i - 3];
        u8 t2 = rk[i - 2]; u8 t3 = rk[i - 1];
        if (i % 16 == 0) {
            u8 tmp = t0;
            t0 = sbox[t1] ^ rcon; t1 = sbox[t2];
            t2 = sbox[t3]; t3 = sbox[tmp];
            rcon = xt[rcon];
        }
        rk[i] = rk[i - 16] ^ t0;
        rk[i + 1] = rk[i - 15] ^ t1;
        rk[i + 2] = rk[i - 14] ^ t2;
        rk[i + 3] = rk[i - 13] ^ t3;
    }
}

void addroundkey(u32 round) {
    for (u32 i = 0; i < 16; i++) st[i] = st[i] ^ rk[round * 16 + i];
}

void subshift() {
    for (u32 i = 0; i < 16; i++) st[i] = sbox[st[i]];
    u8 t = st[1]; st[1] = st[5]; st[5] = st[9]; st[9] = st[13];
    st[13] = t;
    t = st[2]; st[2] = st[10]; st[10] = t;
    t = st[6]; st[6] = st[14]; st[14] = t;
    t = st[3]; st[3] = st[15]; st[15] = st[11]; st[11] = st[7];
    st[7] = t;
}

void mixcolumns() {
    for (u32 c = 0; c < 4; c++) {
        u32 b = c * 4;
        u8 a0 = st[b]; u8 a1 = st[b + 1];
        u8 a2 = st[b + 2]; u8 a3 = st[b + 3];
        u8 x = a0 ^ a1 ^ a2 ^ a3;
        st[b] = st[b] ^ x ^ xt[a0 ^ a1];
        st[b + 1] = st[b + 1] ^ x ^ xt[a1 ^ a2];
        st[b + 2] = st[b + 2] ^ x ^ xt[a2 ^ a3];
        st[b + 3] = st[b + 3] ^ x ^ xt[a3 ^ a0];
    }
}

u32 main() {
    for (u32 i = 0; i < 256; i++) {
        u32 d = i << 1;
        if (i & 0x80) d = d ^ 0x11b;
        xt[i] = (u8)d;
    }
    keyexpand();
    u32 sum = 0;
    for (u32 blk = 0; blk < 64; blk++) {
        for (u32 i = 0; i < 16; i++) st[i] = pt[blk * 16 + i];
        addroundkey(0);
        for (u32 round = 1; round < 10; round++) {
            subshift();
            mixcolumns();
            addroundkey(round);
        }
        subshift();
        addroundkey(10);
        for (u32 i = 0; i < 16; i++) ct[blk * 16 + i] = st[i];
        sum ^= st[0] | (st[5] << 8) | (st[10] << 16) | (st[15] << 24);
    }
    out(sum);
    return sum;
}
)";

void
rijndaelInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xae5128);
    // A real AES S-box is not needed for the compute shape; any
    // bijective byte table exercises the identical datapath. Build a
    // random permutation.
    Global *sbox = glob(m, "sbox");
    std::vector<uint8_t> perm(256);
    for (unsigned i = 0; i < 256; ++i)
        perm[i] = static_cast<uint8_t>(i);
    for (unsigned i = 255; i > 0; --i) {
        auto j = static_cast<unsigned>(rng.nextBelow(i + 1));
        std::swap(perm[i], perm[j]);
    }
    for (unsigned i = 0; i < 256; ++i)
        sbox->setElem(i, perm[i]);

    Global *key = glob(m, "key");
    for (unsigned i = 0; i < 16; ++i)
        key->setElem(i, rng.nextBelow(256));
    Global *pt = glob(m, "pt");
    for (size_t i = 0; i < pt->elemCount(); ++i)
        pt->setElem(i, rng.nextBelow(256));
}

// ===================== Blowfish =====================

const char *kBlowfishSrc = R"(
u32 s0[256];
u32 s1[256];
u32 s2[256];
u32 s3[256];
u32 parr[18];
u32 blocks[128];

u32 f(u32 x) {
    u32 a = (x >> 24) & 0xff;
    u32 b = (x >> 16) & 0xff;
    u32 c = (x >> 8) & 0xff;
    u32 d = x & 0xff;
    return ((s0[a] + s1[b]) ^ s2[c]) + s3[d];
}

u32 main() {
    u32 sum = 0;
    for (u32 blk = 0; blk < 64; blk++) {
        u32 xl = blocks[blk * 2];
        u32 xr = blocks[blk * 2 + 1];
        for (u32 i = 0; i < 16; i++) {
            xl = xl ^ parr[i];
            xr = f(xl) ^ xr;
            u32 t = xl; xl = xr; xr = t;
        }
        u32 t2 = xl; xl = xr; xr = t2;
        xr = xr ^ parr[16];
        xl = xl ^ parr[17];
        blocks[blk * 2] = xl;
        blocks[blk * 2 + 1] = xr;
        sum ^= xl ^ xr;
    }
    out(sum);
    return sum;
}
)";

void
blowfishInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xb70f15);
    for (const char *name : {"s0", "s1", "s2", "s3"}) {
        Global *s = glob(m, name);
        for (size_t i = 0; i < s->elemCount(); ++i)
            s->setElem(i, rng.next() & 0xffffffff);
    }
    Global *p = glob(m, "parr");
    for (size_t i = 0; i < p->elemCount(); ++i)
        p->setElem(i, rng.next() & 0xffffffff);
    Global *blocks = glob(m, "blocks");
    for (size_t i = 0; i < blocks->elemCount(); ++i)
        blocks->setElem(i, rng.next() & 0xffffffff);
}

// ===================== Dijkstra =====================

const char *kDijkstraSrc = R"(
u8 adj[1024];
u32 dist[32];
u8 vis[32];

u32 run(u32 src) {
    for (u32 i = 0; i < 32; i++) { dist[i] = 0xFFFFFF; vis[i] = 0; }
    dist[src] = 0;
    for (u32 it = 0; it < 32; it++) {
        u32 best = 0xFFFFFF;
        u32 u = 32;
        for (u32 i = 0; i < 32; i++) {
            if (vis[i] == 0 && dist[i] < best) {
                best = dist[i];
                u = i;
            }
        }
        if (u == 32) break;
        vis[u] = 1;
        for (u32 v = 0; v < 32; v++) {
            u32 wgt = adj[u * 32 + v];
            if (wgt != 255 && dist[u] + wgt < dist[v])
                dist[v] = dist[u] + wgt;
        }
    }
    u32 sum = 0;
    for (u32 i = 0; i < 32; i++)
        if (dist[i] != 0xFFFFFF) sum += dist[i];
    return sum;
}

u32 main() {
    u32 total = 0;
    for (u32 s = 0; s < 8; s++) {
        u32 r = run(s);
        out(r);
        total += r;
    }
    return total;
}
)";

void
dijkstraInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xd1735);
    Global *adj = glob(m, "adj");
    for (unsigned u = 0; u < 32; ++u) {
        for (unsigned v = 0; v < 32; ++v) {
            // ~65% of edges exist with byte weights 1..40.
            uint64_t w = rng.nextBelow(100) < 65
                             ? rng.nextRange(1, 40)
                             : 255;
            adj->setElem(u * 32 + v, u == v ? 0 : w);
        }
    }
}

// ===================== Patricia (bit trie) =====================

const char *kPatriciaSrc = R"(
u32 nodekey[1024];
u32 nodeleft[1024];
u32 noderight[1024];
u32 nodecount;
u32 keys[256];
u32 queries[512];

u32 insert(u32 key) {
    if (nodecount == 0) {
        nodekey[0] = key; nodeleft[0] = 0xFFFF; noderight[0] = 0xFFFF;
        nodecount = 1;
        return 0;
    }
    u32 n = 0;
    for (u32 bit = 0; bit < 16; bit++) {
        if (nodekey[n] == key) return n;
        u32 b = (key >> (15 - bit)) & 1;
        u32 next = b ? noderight[n] : nodeleft[n];
        if (next == 0xFFFF) {
            u32 fresh = nodecount;
            nodecount++;
            nodekey[fresh] = key;
            nodeleft[fresh] = 0xFFFF;
            noderight[fresh] = 0xFFFF;
            if (b) noderight[n] = fresh;
            else nodeleft[n] = fresh;
            return fresh;
        }
        n = next;
    }
    return n;
}

u32 lookup(u32 key) {
    if (nodecount == 0) return 0;
    u32 n = 0;
    for (u32 bit = 0; bit < 16; bit++) {
        if (nodekey[n] == key) return 1;
        u32 b = (key >> (15 - bit)) & 1;
        u32 next = b ? noderight[n] : nodeleft[n];
        if (next == 0xFFFF) return 0;
        n = next;
    }
    return nodekey[n] == key;
}

u32 main() {
    nodecount = 0;
    for (u32 i = 0; i < 256; i++) insert(keys[i]);
    u32 hits = 0;
    for (u32 q = 0; q < 512; q++) hits += lookup(queries[q]);
    out(hits);
    out(nodecount);
    return hits;
}
)";

void
patriciaInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xa77);
    Global *keys = glob(m, "keys");
    for (size_t i = 0; i < keys->elemCount(); ++i)
        keys->setElem(i, rng.nextBelow(0x10000));
    Global *queries = glob(m, "queries");
    for (size_t i = 0; i < queries->elemCount(); ++i) {
        // Half the queries hit inserted keys.
        if (rng.nextBelow(2) == 0)
            queries->setElem(i, keys->elem(rng.nextBelow(256)));
        else
            queries->setElem(i, rng.nextBelow(0x10000));
    }
}

// ===================== qsort =====================

const char *kQsortSrc = R"(
u32 arr[512];

u32 cmp(u32 a, u32 b) { return a > b; }

void qs(u32 lo, u32 hi) {
    if (lo >= hi) return;
    u32 pivot = arr[hi];
    u32 i = lo;
    for (u32 j = lo; j < hi; j++) {
        if (cmp(pivot, arr[j])) {
            u32 t = arr[i]; arr[i] = arr[j]; arr[j] = t;
            i++;
        }
    }
    u32 t2 = arr[i]; arr[i] = arr[hi]; arr[hi] = t2;
    if (i > lo) qs(lo, i - 1);
    qs(i + 1, hi);
}

u32 main() {
    qs(0, 511);
    u32 h = 0;
    for (u32 i = 0; i < 512; i++) h = h * 31 + arr[i];
    out(h);
    return h;
}
)";

void
qsortInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0x9507);
    Global *arr = glob(m, "arr");
    for (size_t i = 0; i < arr->elemCount(); ++i)
        arr->setElem(i, rng.nextBelow(100000));
}

// ===================== stringsearch (Horspool) =====================

const char *kStringsearchSrc = R"(
u8 pats[128];
u8 patlens[8];
u8 strs[2048];
u8 strlens[32];
u8 shift[256];

u32 search(u32 p, u32 s) {
    u32 plen = patlens[p];
    u32 slen = strlens[s];
    if (plen == 0 || plen > slen) return 0;
    for (u32 i = 0; i < 256; i++) shift[i] = (u8)plen;
    for (u32 i = 0; i + 1 < plen; i++)
        shift[pats[p * 16 + i]] = (u8)(plen - 1 - i);
    u32 count = 0;
    u32 pos = 0;
    while (pos + plen <= slen) {
        u32 j = plen;
        while (j > 0 && pats[p * 16 + j - 1] == strs[s * 64 + pos + j - 1])
            j--;
        if (j == 0) count++;
        pos += shift[strs[s * 64 + pos + plen - 1]];
    }
    return count;
}

u32 main() {
    u32 total = 0;
    for (u32 p = 0; p < 8; p++) {
        u32 found = 0;
        for (u32 s = 0; s < 32; s++) found += search(p, s);
        out(found);
        total += found;
    }
    return total;
}
)";

void
stringsearchInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0x57ee);
    Global *strs = glob(m, "strs");
    Global *strlens = glob(m, "strlens");
    const char *alphabet = "abcdefgh ";
    // Strings: up to 56 chars (paper Listing 1).
    for (unsigned s = 0; s < 32; ++s) {
        uint64_t len = rng.nextRange(20, 56);
        strlens->setElem(s, len);
        for (uint64_t i = 0; i < len; ++i)
            strs->setElem(s * 64 + i, alphabet[rng.nextBelow(9)]);
    }
    // Patterns: up to 12 chars; half sampled from the strings so that
    // matches occur.
    Global *pats = glob(m, "pats");
    Global *patlens = glob(m, "patlens");
    for (unsigned p = 0; p < 8; ++p) {
        uint64_t len = rng.nextRange(2, 12);
        patlens->setElem(p, len);
        if (p % 2 == 0) {
            auto s = static_cast<unsigned>(rng.nextBelow(32));
            uint64_t start = rng.nextBelow(
                std::max<uint64_t>(1, strlens->elem(s) - len));
            for (uint64_t i = 0; i < len; ++i)
                pats->setElem(p * 16 + i,
                              strs->elem(s * 64 + start + i));
        } else {
            for (uint64_t i = 0; i < len; ++i)
                pats->setElem(p * 16 + i, alphabet[rng.nextBelow(9)]);
        }
    }
}

// ===================== bitcount =====================

const char *kBitcountSrc = R"(
u32 words[1024];
u8 nib[16] = { 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4 };

u32 count_table(u32 x) {
    u32 c = 0;
    while (x) { c += nib[x & 0xf]; x >>= 4; }
    return c;
}

u32 count_kernighan(u32 x) {
    u32 c = 0;
    while (x) { x &= x - 1; c++; }
    return c;
}

u32 count_shift(u32 x) {
    u32 c = 0;
    for (u32 i = 0; i < 32; i++) c += (x >> i) & 1;
    return c;
}

u32 main() {
    u32 a = 0; u32 b = 0; u32 c = 0;
    for (u32 i = 0; i < 1024; i++) {
        a += count_table(words[i]);
        b += count_kernighan(words[i]);
        c += count_shift(words[i]);
    }
    out(a); out(b); out(c);
    if (a != b) return 0xdead;
    if (b != c) return 0xbeef;
    return a;
}
)";

void
bitcountInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xb17c);
    Global *words = glob(m, "words");
    for (size_t i = 0; i < words->elemCount(); ++i) {
        // Mixed magnitudes: many small words (sparse bits), some wide.
        uint64_t w = rng.nextBelow(3) == 0 ? rng.next() & 0xffffffff
                                           : rng.nextBelow(4096);
        words->setElem(i, w);
    }
}

// ===================== basicmath =====================

const char *kBasicmathSrc = R"(
u32 vals[256];

u32 isqrt(u32 x) {
    u32 res = 0;
    u32 bit = 1 << 30;
    while (bit > x) bit >>= 2;
    while (bit != 0) {
        if (x >= res + bit) {
            x -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    return res;
}

u32 icbrt(u32 x) {
    u32 y = 0;
    for (i32 s = 30; s >= 0; s -= 3) {
        y = y * 2;
        u32 b = 3 * y * (y + 1) + 1;
        if ((x >> (u32)s) >= b) {
            x -= b << (u32)s;
            y++;
        }
    }
    return y;
}

u32 gcd(u32 a, u32 b) {
    while (b != 0) {
        u32 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

u32 main() {
    u32 acc = 0;
    for (u32 i = 0; i < 256; i++) {
        u32 v = vals[i];
        acc += isqrt(v);
        acc += icbrt(v);
        if (i + 1 < 256) acc += gcd(v + 1, vals[i + 1] + 1);
        // Fixed-point degree -> radian: v * 31416 / 1800000.
        acc += (v % 360) * 31416 / 1800000;
    }
    out(acc);
    return acc;
}
)";

void
basicmathInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xba51c);
    Global *vals = glob(m, "vals");
    for (size_t i = 0; i < vals->elemCount(); ++i)
        vals->setElem(i, rng.nextBelow(1u << 20));
}

// ===================== FFT (fixed point, radix-2) =====================

const char *kFftSrc = R"(
i32 re[128];
i32 im[128];
i32 costab[64];
i32 sintab[64];

u32 main() {
    // Bit-reverse permutation for N = 128 (7 bits).
    for (u32 i = 0; i < 128; i++) {
        u32 r = 0;
        for (u32 b = 0; b < 7; b++) r |= ((i >> b) & 1) << (6 - b);
        if (r > i) {
            i32 t = re[i]; re[i] = re[r]; re[r] = t;
            t = im[i]; im[i] = im[r]; im[r] = t;
        }
    }
    // log2(128) = 7 stages.
    u32 half = 1;
    while (half < 128) {
        u32 step = 64 / half;
        for (u32 start = 0; start < 128; start += half * 2) {
            for (u32 k = 0; k < half; k++) {
                u32 tw = k * step;
                i32 c = costab[tw];
                i32 s = sintab[tw];
                u32 a = start + k;
                u32 b = a + half;
                i32 tre = (re[b] * c - im[b] * s) >> 12;
                i32 tim = (re[b] * s + im[b] * c) >> 12;
                re[b] = re[a] - tre;
                im[b] = im[a] - tim;
                re[a] = re[a] + tre;
                im[a] = im[a] + tim;
            }
        }
        half *= 2;
    }
    u32 acc = 0;
    for (u32 i = 0; i < 128; i++) {
        i32 r2 = re[i];
        i32 i2 = im[i];
        u32 mag = (u32)(r2 * r2 + i2 * i2);
        acc ^= mag;
        if (i % 16 == 0) out(mag);
    }
    return acc;
}
)";

void
fftInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0xff7);
    Global *costab = glob(m, "costab");
    Global *sintab = glob(m, "sintab");
    for (unsigned k = 0; k < 64; ++k) {
        double ang = -2.0 * M_PI * k / 128.0;
        costab->setElem(k, static_cast<uint64_t>(static_cast<int64_t>(
            std::lround(std::cos(ang) * 4096))));
        sintab->setElem(k, static_cast<uint64_t>(static_cast<int64_t>(
            std::lround(std::sin(ang) * 4096))));
    }
    Global *re = glob(m, "re");
    Global *im = glob(m, "im");
    double f1 = 2.0 + rng.nextBelow(6);
    double f2 = 9.0 + rng.nextBelow(20);
    for (unsigned i = 0; i < 128; ++i) {
        double v = 900.0 * std::sin(2.0 * M_PI * f1 * i / 128.0) +
                   500.0 * std::sin(2.0 * M_PI * f2 * i / 128.0) +
                   (rng.nextDouble() - 0.5) * 60.0;
        re->setElem(i, static_cast<uint64_t>(static_cast<int64_t>(
            std::lround(v))));
        im->setElem(i, 0);
    }
}

// ===================== susan =====================

/** Shared USAN helpers; the three variants differ in the response
 *  computation, mirroring MiBench's -s/-e/-c modes. */
const char *kSusanCommon = R"(
u8 img[4096];
u8 result[4096];
u8 lut[256];

void mklut(u32 bt) {
    for (u32 d = 0; d < 256; d++) {
        if (d < bt) lut[d] = (u8)(100 - (d * d * 100) / (bt * bt));
        else lut[d] = 0;
    }
}

u32 absdiff(u32 a, u32 b) { return a > b ? a - b : b - a; }
)";

const char *kSusanSmoothingSrc = R"(
u32 main() {
    mklut(28);
    for (u32 y = 1; y < 63; y++) {
        for (u32 x = 1; x < 63; x++) {
            u32 c = img[y * 64 + x];
            u32 total = 0;
            u32 wsum = 0;
            for (u32 dy = 0; dy < 3; dy++) {
                for (u32 dx = 0; dx < 3; dx++) {
                    u32 p = img[(y + dy - 1) * 64 + (x + dx - 1)];
                    u32 wgt = lut[absdiff(p, c)];
                    total += wgt * p;
                    wsum += wgt;
                }
            }
            result[y * 64 + x] = (u8)(total / wsum);
        }
    }
    u32 h = 0;
    for (u32 i = 0; i < 4096; i++) h = h * 31 + result[i];
    out(h);
    return h;
}
)";

const char *kSusanEdgesSrc = R"(
u32 main() {
    mklut(20);
    u32 maxn = 900;
    for (u32 y = 2; y < 62; y++) {
        for (u32 x = 2; x < 62; x++) {
            u32 c = img[y * 64 + x];
            u32 n = 0;
            for (u32 dy = 0; dy < 5; dy++) {
                for (u32 dx = 0; dx < 5; dx++) {
                    u32 p = img[(y + dy - 2) * 64 + (x + dx - 2)];
                    n += lut[absdiff(p, c)];
                }
            }
            u32 thresh = (maxn * 3) / 4;
            u32 r = 0;
            if (n < thresh) r = (thresh - n) / 4;
            if (r > 255) r = 255;
            result[y * 64 + x] = (u8)r;
        }
    }
    u32 h = 0;
    u32 edges = 0;
    for (u32 i = 0; i < 4096; i++) {
        h = h * 31 + result[i];
        if (result[i] > 16) edges++;
    }
    out(h);
    out(edges);
    return h;
}
)";

const char *kSusanCornersSrc = R"(
u32 main() {
    mklut(20);
    u32 maxn = 900;
    for (u32 y = 2; y < 62; y++) {
        for (u32 x = 2; x < 62; x++) {
            u32 c = img[y * 64 + x];
            u32 n = 0;
            for (u32 dy = 0; dy < 5; dy++) {
                for (u32 dx = 0; dx < 5; dx++) {
                    u32 p = img[(y + dy - 2) * 64 + (x + dx - 2)];
                    n += lut[absdiff(p, c)];
                }
            }
            u32 thresh = maxn / 2;
            u32 r = 0;
            if (n < thresh) r = (thresh - n) / 2;
            if (r > 255) r = 255;
            result[y * 64 + x] = (u8)r;
        }
    }
    u32 corners = 0;
    u32 h = 0;
    for (u32 y = 1; y < 63; y++) {
        for (u32 x = 1; x < 63; x++) {
            u32 v = result[y * 64 + x];
            // Local maximum test.
            if (v > 40
                && v >= result[y * 64 + x - 1]
                && v >= result[y * 64 + x + 1]
                && v >= result[(y - 1) * 64 + x]
                && v >= result[(y + 1) * 64 + x]) {
                corners++;
            }
            h = h * 31 + v;
        }
    }
    out(h);
    out(corners);
    return h;
}
)";

void
susanInput(Module &m, uint64_t seed)
{
    auto img = generateImage(seed, 64, 64);
    Global *g = glob(m, "img");
    for (size_t i = 0; i < img.size() && i < g->elemCount(); ++i)
        g->setElem(i, img[i]);
}

} // namespace

const std::vector<Workload> &
mibenchSuite()
{
    static const std::vector<Workload> suite = [] {
        std::vector<Workload> s;
        s.push_back({"CRC32", kCrc32Src, crc32Input, 0});
        s.push_back({"FFT", kFftSrc, fftInput, 0});
        s.push_back({"basicmath", kBasicmathSrc, basicmathInput, 0});
        s.push_back({"bitcount", kBitcountSrc, bitcountInput, 0});
        s.push_back({"blowfish", kBlowfishSrc, blowfishInput, 0});
        s.push_back({"dijkstra", kDijkstraSrc, dijkstraInput, 0});
        s.push_back({"patricia", kPatriciaSrc, patriciaInput, 0});
        s.push_back({"qsort", kQsortSrc, qsortInput, 0});
        s.push_back({"rijndael", kRijndaelSrc, rijndaelInput, 0});
        s.push_back({"sha", kShaSrc, shaInput, 0});
        s.push_back({"stringsearch", kStringsearchSrc,
                     stringsearchInput, 0});
        s.push_back({"susan-edges",
                     std::string(kSusanCommon) + kSusanEdgesSrc,
                     susanInput, 0});
        s.push_back({"susan-corners",
                     std::string(kSusanCommon) + kSusanCornersSrc,
                     susanInput, 0});
        s.push_back({"susan-smoothing",
                     std::string(kSusanCommon) + kSusanSmoothingSrc,
                     susanInput, 0});
        return s;
    }();
    return suite;
}

} // namespace bitspec
