#include "workloads/images.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace bitspec
{

std::vector<uint8_t>
generateImage(uint64_t seed, unsigned w, unsigned h)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xb17e5bec);
    std::vector<double> img(static_cast<size_t>(w) * h, 0.0);

    // Base gradient with random orientation and strength.
    double gx = rng.nextDouble() * 2.0 - 1.0;
    double gy = rng.nextDouble() * 2.0 - 1.0;
    double base = 60.0 + rng.nextDouble() * 100.0;
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            img[y * w + x] = base + gx * x + gy * y;

    // Elliptical blobs (objects with edges and corners).
    unsigned blobs = 3 + static_cast<unsigned>(rng.nextBelow(5));
    for (unsigned b = 0; b < blobs; ++b) {
        double cx = rng.nextDouble() * w;
        double cy = rng.nextDouble() * h;
        double rx = 3.0 + rng.nextDouble() * (w / 4.0);
        double ry = 3.0 + rng.nextDouble() * (h / 4.0);
        double lvl = rng.nextDouble() * 255.0;
        for (unsigned y = 0; y < h; ++y) {
            for (unsigned x = 0; x < w; ++x) {
                double dx = (x - cx) / rx;
                double dy = (y - cy) / ry;
                if (dx * dx + dy * dy < 1.0)
                    img[y * w + x] = lvl;
            }
        }
    }

    // A rectangle for sharp corners.
    {
        unsigned x0 = static_cast<unsigned>(rng.nextBelow(w / 2));
        unsigned y0 = static_cast<unsigned>(rng.nextBelow(h / 2));
        unsigned x1 = x0 + 4 + static_cast<unsigned>(
            rng.nextBelow(w / 3));
        unsigned y1 = y0 + 4 + static_cast<unsigned>(
            rng.nextBelow(h / 3));
        double lvl = rng.nextDouble() * 255.0;
        for (unsigned y = y0; y < std::min(y1, h); ++y)
            for (unsigned x = x0; x < std::min(x1, w); ++x)
                img[y * w + x] = lvl;
    }

    // Mild noise.
    std::vector<uint8_t> out(img.size());
    for (size_t i = 0; i < img.size(); ++i) {
        double v = img[i] + (rng.nextDouble() - 0.5) * 12.0;
        out[i] = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
    }
    return out;
}

} // namespace bitspec
