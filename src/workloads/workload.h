/**
 * @file
 * Workload abstraction: a C-subset program plus deterministic input
 * generators standing in for the MiBench data files (paper §4.1).
 *
 * Input seeds: seed 0 is the "provided/large" input used for both
 * profiling and measurement in the main experiments; other seeds
 * generate the alternate inputs of the RQ6 sensitivity study.
 */

#ifndef BITSPEC_WORKLOADS_WORKLOAD_H_
#define BITSPEC_WORKLOADS_WORKLOAD_H_

#include <functional>
#include <string>
#include <vector>

#include "ir/module.h"

namespace bitspec
{

/** One benchmark: source + input generator. */
struct Workload
{
    std::string name;
    std::string source;
    /** Write input data into the module's globals for @p seed. */
    std::function<void(Module &, uint64_t seed)> setInput;
    /** Expected interpreter checksum for seed 0 (0 = unchecked). */
    uint64_t expectedChecksum = 0;
};

/** The MiBench-style suite (14 kernels, paper Fig. 8). */
const std::vector<Workload> &mibenchSuite();

/** Lookup by name; throws FatalError when unknown. */
const Workload &getWorkload(const std::string &name);

} // namespace bitspec

#endif // BITSPEC_WORKLOADS_WORKLOAD_H_
