/**
 * @file
 * Tokens for the BitSpec C-subset front-end.
 */

#ifndef BITSPEC_FRONTEND_TOKEN_H_
#define BITSPEC_FRONTEND_TOKEN_H_

#include <cstdint>
#include <string>

namespace bitspec
{

/** Token kinds. Punctuation spelled out for readability. */
enum class Tok
{
    End,
    Ident,
    IntLit,
    StrLit,

    // Keywords.
    KwVoid, KwU8, KwU16, KwU32, KwU64, KwI8, KwI16, KwI32, KwI64,
    KwIf, KwElse, KwWhile, KwDo, KwFor, KwReturn, KwBreak, KwContinue,

    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi,

    // Operators.
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    Lt, Gt, Le, Ge, EqEq, NotEq,
    AmpAmp, PipePipe,
    Assign,
    PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
    AmpEq, PipeEq, CaretEq, ShlEq, ShrEq,
    PlusPlus, MinusMinus,
    Question, Colon,
};

/** One lexed token with source position for diagnostics. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;     ///< Identifier or string literal contents.
    uint64_t intValue = 0;
    int line = 0;
    int col = 0;
};

/** Human-readable token name for diagnostics. */
const char *tokName(Tok t);

} // namespace bitspec

#endif // BITSPEC_FRONTEND_TOKEN_H_
