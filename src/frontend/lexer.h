/**
 * @file
 * Hand-written lexer for the BitSpec C subset.
 */

#ifndef BITSPEC_FRONTEND_LEXER_H_
#define BITSPEC_FRONTEND_LEXER_H_

#include <string>
#include <vector>

#include "frontend/token.h"

namespace bitspec
{

/**
 * Tokenise @p source. Supports decimal/hex/char literals, string
 * literals with C escapes, line (//) and block comments. Throws
 * FatalError with line/column on bad input.
 */
std::vector<Token> lex(const std::string &source);

} // namespace bitspec

#endif // BITSPEC_FRONTEND_LEXER_H_
