/**
 * @file
 * Typed IR generation from the C-subset AST.
 *
 * SSA is constructed directly (Braun et al., "Simple and Efficient
 * Construction of Static Single Assignment Form") with sealed-block
 * bookkeeping; redundant phis are cleaned by simplifyTrivialPhis().
 *
 * Typing follows C-like rules: u8/u16 operands are promoted to 32 bits
 * for arithmetic, the wider type wins, unsignedness wins at equal
 * width, and assignment converts back to the destination type. This is
 * exactly the behaviour that makes programmer-selected widths larger
 * than required (paper §2, Fig. 1b) and gives BitSpec its opportunity.
 */

#ifndef BITSPEC_FRONTEND_IRGEN_H_
#define BITSPEC_FRONTEND_IRGEN_H_

#include <memory>
#include <string>

#include "frontend/ast.h"
#include "ir/module.h"

namespace bitspec
{

/** Lower @p program into a fresh IR module. Throws FatalError on
 *  semantic errors (unknown names, arity mismatches, bad types). */
std::unique_ptr<Module> generateIR(const ast::Program &program);

/**
 * Convenience: parse + lower + cleanup + verify. The standard entry
 * point used by workloads, tests and examples.
 */
std::unique_ptr<Module> compileSource(const std::string &source);

} // namespace bitspec

#endif // BITSPEC_FRONTEND_IRGEN_H_
