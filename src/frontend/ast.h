/**
 * @file
 * AST for the BitSpec C subset.
 *
 * The language is deliberately small but sufficient for the MiBench
 * re-implementations: sized integer types, global scalars/arrays with
 * initialisers, functions with recursion, full C expression precedence
 * with short-circuit logic, and the usual statements. There are no
 * pointers; arrays are global and indexed. `out(e)` emits an observable
 * value (the volatile output channel).
 */

#ifndef BITSPEC_FRONTEND_AST_H_
#define BITSPEC_FRONTEND_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bitspec::ast
{

/** Source-level scalar type: width plus signedness. */
struct SrcType
{
    unsigned bits = 0;      ///< 0 encodes void.
    bool isSigned = false;

    bool isVoid() const { return bits == 0; }
    bool operator==(const SrcType &o) const
    {
        return bits == o.bits && isSigned == o.isSigned;
    }
};

enum class ExprKind
{
    IntLit,
    VarRef,      ///< Local variable, parameter or global scalar.
    Index,       ///< global[expr]
    Unary,       ///< - ~ !
    Binary,      ///< arithmetic/bitwise/relational (non-short-circuit)
    Logical,     ///< && ||
    Ternary,     ///< cond ? a : b
    Cast,        ///< (type)expr
    Call,        ///< f(args) or the out() builtin
};

enum class BinOp
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Lt, Gt, Le, Ge, Eq, Ne,
};

enum class UnOp { Neg, Not, LogicalNot };

struct Expr
{
    ExprKind kind;
    int line = 0;

    // IntLit
    uint64_t intValue = 0;

    // VarRef / Index / Call
    std::string name;

    // Unary/Cast: children[0]. Binary/Logical: children[0,1].
    // Ternary: children[0,1,2]. Index: children[0]. Call: args.
    std::vector<std::unique_ptr<Expr>> children;

    BinOp binOp = BinOp::Add;
    UnOp unOp = UnOp::Neg;
    bool logicalAnd = false; ///< Logical: true for &&, false for ||.
    SrcType castType;        ///< Cast target.
};

enum class StmtKind
{
    Block,
    Decl,      ///< type name [= init];
    Assign,    ///< lvalue op= expr; (op == Add for plain =)
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
    ExprStmt,  ///< expression evaluated for side effects (calls).
};

struct Stmt
{
    StmtKind kind;
    int line = 0;

    // Block
    std::vector<std::unique_ptr<Stmt>> body;

    // Decl
    SrcType declType;
    std::string name;

    // Assign: target (VarRef or Index) and value; compound holds the
    // arithmetic op for `+=` etc.; plain `=` when !isCompound.
    std::unique_ptr<Expr> target;
    bool isCompound = false;
    BinOp compoundOp = BinOp::Add;

    // Generic expression slots: Decl init / Assign value / If cond /
    // While cond / Return value / ExprStmt expr.
    std::unique_ptr<Expr> expr;

    // If: thenS/elseS. While/DoWhile/For: thenS = body.
    std::unique_ptr<Stmt> thenS;
    std::unique_ptr<Stmt> elseS;

    // For: init/step statements.
    std::unique_ptr<Stmt> forInit;
    std::unique_ptr<Stmt> forStep;
};

/** A function definition. */
struct FuncDecl
{
    std::string name;
    SrcType retType;
    std::vector<std::pair<SrcType, std::string>> params;
    std::unique_ptr<Stmt> body;
    int line = 0;
};

/** A global scalar or array with optional initialiser. */
struct GlobalDecl
{
    std::string name;
    SrcType elemType;
    uint64_t arraySize = 0;   ///< 0 for scalars.
    bool isArray = false;
    std::vector<uint64_t> init;
    std::string strInit;      ///< For u8 arrays initialised by string.
    int line = 0;
};

/** A whole translation unit. */
struct Program
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> functions;
};

} // namespace bitspec::ast

#endif // BITSPEC_FRONTEND_AST_H_
