#include "frontend/lexer.h"

#include <cctype>
#include <map>

#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "<end>";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::StrLit: return "string literal";
      case Tok::KwVoid: return "void";
      case Tok::KwU8: return "u8";
      case Tok::KwU16: return "u16";
      case Tok::KwU32: return "u32";
      case Tok::KwU64: return "u64";
      case Tok::KwI8: return "i8";
      case Tok::KwI16: return "i16";
      case Tok::KwI32: return "i32";
      case Tok::KwI64: return "i64";
      case Tok::KwIf: return "if";
      case Tok::KwElse: return "else";
      case Tok::KwWhile: return "while";
      case Tok::KwDo: return "do";
      case Tok::KwFor: return "for";
      case Tok::KwReturn: return "return";
      case Tok::KwBreak: return "break";
      case Tok::KwContinue: return "continue";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::LBrace: return "{";
      case Tok::RBrace: return "}";
      case Tok::LBracket: return "[";
      case Tok::RBracket: return "]";
      case Tok::Comma: return ",";
      case Tok::Semi: return ";";
      case Tok::Plus: return "+";
      case Tok::Minus: return "-";
      case Tok::Star: return "*";
      case Tok::Slash: return "/";
      case Tok::Percent: return "%";
      case Tok::Amp: return "&";
      case Tok::Pipe: return "|";
      case Tok::Caret: return "^";
      case Tok::Tilde: return "~";
      case Tok::Bang: return "!";
      case Tok::Shl: return "<<";
      case Tok::Shr: return ">>";
      case Tok::Lt: return "<";
      case Tok::Gt: return ">";
      case Tok::Le: return "<=";
      case Tok::Ge: return ">=";
      case Tok::EqEq: return "==";
      case Tok::NotEq: return "!=";
      case Tok::AmpAmp: return "&&";
      case Tok::PipePipe: return "||";
      case Tok::Assign: return "=";
      case Tok::PlusEq: return "+=";
      case Tok::MinusEq: return "-=";
      case Tok::StarEq: return "*=";
      case Tok::SlashEq: return "/=";
      case Tok::PercentEq: return "%=";
      case Tok::AmpEq: return "&=";
      case Tok::PipeEq: return "|=";
      case Tok::CaretEq: return "^=";
      case Tok::ShlEq: return "<<=";
      case Tok::ShrEq: return ">>=";
      case Tok::PlusPlus: return "++";
      case Tok::MinusMinus: return "--";
      case Tok::Question: return "?";
      case Tok::Colon: return ":";
    }
    return "?";
}

namespace
{

const std::map<std::string, Tok> kKeywords = {
    {"void", Tok::KwVoid},
    {"u8", Tok::KwU8}, {"u16", Tok::KwU16},
    {"u32", Tok::KwU32}, {"u64", Tok::KwU64},
    {"i8", Tok::KwI8}, {"i16", Tok::KwI16},
    {"i32", Tok::KwI32}, {"i64", Tok::KwI64},
    // C-flavoured aliases used by the MiBench-style sources. size_t
    // is 32 bits: the target is a 32-bit ARM-class core (§4.1).
    {"char", Tok::KwU8}, {"int", Tok::KwI32},
    {"uint", Tok::KwU32}, {"size_t", Tok::KwU32},
    {"if", Tok::KwIf}, {"else", Tok::KwElse},
    {"while", Tok::KwWhile}, {"do", Tok::KwDo}, {"for", Tok::KwFor},
    {"return", Tok::KwReturn},
    {"break", Tok::KwBreak}, {"continue", Tok::KwContinue},
};

class LexerImpl
{
  public:
    explicit LexerImpl(const std::string &src) : src_(src) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        for (;;) {
            skipSpaceAndComments();
            Token t = next();
            out.push_back(t);
            if (t.kind == Tok::End)
                break;
        }
        return out;
    }

  private:
    [[noreturn]] void
    err(const std::string &msg)
    {
        fatal(strFormat("lex error at %d:%d: %s", line_, col_,
                        msg.c_str()));
    }

    bool done() const { return pos_ >= src_.size(); }
    char peek() const { return done() ? '\0' : src_[pos_]; }
    char
    peek2() const
    {
        return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
    }

    char
    advance()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    void
    skipSpaceAndComments()
    {
        for (;;) {
            while (!done() && std::isspace(peek()))
                advance();
            if (peek() == '/' && peek2() == '/') {
                while (!done() && peek() != '\n')
                    advance();
                continue;
            }
            if (peek() == '/' && peek2() == '*') {
                advance();
                advance();
                while (!done() && !(peek() == '*' && peek2() == '/'))
                    advance();
                if (done())
                    err("unterminated block comment");
                advance();
                advance();
                continue;
            }
            return;
        }
    }

    char
    unescape(char c)
    {
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default: err(strFormat("bad escape '\\%c'", c));
        }
    }

    Token
    next()
    {
        Token t;
        t.line = line_;
        t.col = col_;
        if (done()) {
            t.kind = Tok::End;
            return t;
        }
        char c = advance();

        if (std::isalpha(c) || c == '_') {
            std::string ident(1, c);
            while (std::isalnum(peek()) || peek() == '_')
                ident += advance();
            auto it = kKeywords.find(ident);
            if (it != kKeywords.end()) {
                t.kind = it->second;
            } else {
                t.kind = Tok::Ident;
                t.text = ident;
            }
            return t;
        }

        if (std::isdigit(c)) {
            t.kind = Tok::IntLit;
            uint64_t v = 0;
            if (c == '0' && (peek() == 'x' || peek() == 'X')) {
                advance();
                bool any = false;
                while (std::isxdigit(peek())) {
                    char d = advance();
                    v = v * 16 +
                        (std::isdigit(d) ? d - '0'
                                         : std::tolower(d) - 'a' + 10);
                    any = true;
                }
                if (!any)
                    err("empty hex literal");
            } else {
                v = static_cast<uint64_t>(c - '0');
                while (std::isdigit(peek()))
                    v = v * 10 + static_cast<uint64_t>(advance() - '0');
            }
            // Optional u/ul/ull suffixes are accepted and ignored.
            while (peek() == 'u' || peek() == 'U' || peek() == 'l' ||
                   peek() == 'L') {
                advance();
            }
            t.intValue = v;
            return t;
        }

        if (c == '\'') {
            t.kind = Tok::IntLit;
            char v = advance();
            if (v == '\\')
                v = unescape(advance());
            if (advance() != '\'')
                err("unterminated char literal");
            t.intValue = static_cast<uint8_t>(v);
            return t;
        }

        if (c == '"') {
            t.kind = Tok::StrLit;
            while (peek() != '"') {
                if (done())
                    err("unterminated string literal");
                char v = advance();
                if (v == '\\')
                    v = unescape(advance());
                t.text += v;
            }
            advance();
            return t;
        }

        auto two = [&](char second, Tok yes, Tok no) {
            if (peek() == second) {
                advance();
                t.kind = yes;
            } else {
                t.kind = no;
            }
        };

        switch (c) {
          case '(': t.kind = Tok::LParen; break;
          case ')': t.kind = Tok::RParen; break;
          case '{': t.kind = Tok::LBrace; break;
          case '}': t.kind = Tok::RBrace; break;
          case '[': t.kind = Tok::LBracket; break;
          case ']': t.kind = Tok::RBracket; break;
          case ',': t.kind = Tok::Comma; break;
          case ';': t.kind = Tok::Semi; break;
          case '~': t.kind = Tok::Tilde; break;
          case '?': t.kind = Tok::Question; break;
          case ':': t.kind = Tok::Colon; break;
          case '+':
            if (peek() == '+') {
                advance();
                t.kind = Tok::PlusPlus;
            } else {
                two('=', Tok::PlusEq, Tok::Plus);
            }
            break;
          case '-':
            if (peek() == '-') {
                advance();
                t.kind = Tok::MinusMinus;
            } else {
                two('=', Tok::MinusEq, Tok::Minus);
            }
            break;
          case '*': two('=', Tok::StarEq, Tok::Star); break;
          case '/': two('=', Tok::SlashEq, Tok::Slash); break;
          case '%': two('=', Tok::PercentEq, Tok::Percent); break;
          case '^': two('=', Tok::CaretEq, Tok::Caret); break;
          case '!': two('=', Tok::NotEq, Tok::Bang); break;
          case '=': two('=', Tok::EqEq, Tok::Assign); break;
          case '&':
            if (peek() == '&') {
                advance();
                t.kind = Tok::AmpAmp;
            } else {
                two('=', Tok::AmpEq, Tok::Amp);
            }
            break;
          case '|':
            if (peek() == '|') {
                advance();
                t.kind = Tok::PipePipe;
            } else {
                two('=', Tok::PipeEq, Tok::Pipe);
            }
            break;
          case '<':
            if (peek() == '<') {
                advance();
                two('=', Tok::ShlEq, Tok::Shl);
            } else {
                two('=', Tok::Le, Tok::Lt);
            }
            break;
          case '>':
            if (peek() == '>') {
                advance();
                two('=', Tok::ShrEq, Tok::Shr);
            } else {
                two('=', Tok::Ge, Tok::Gt);
            }
            break;
          default:
            err(strFormat("unexpected character '%c'", c));
        }
        return t;
    }

    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    return LexerImpl(source).run();
}

} // namespace bitspec
