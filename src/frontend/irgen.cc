#include "frontend/irgen.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "analysis/cfg.h"
#include "ir/builder.h"
#include "analysis/verifier.h"
#include "frontend/parser.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"
#include "transform/simplify.h"

namespace bitspec
{

namespace
{

using ast::BinOp;
using ast::Expr;
using ast::ExprKind;
using ast::SrcType;
using ast::Stmt;
using ast::StmtKind;
using ast::UnOp;

/** An IR value together with its source-level type. */
struct TV
{
    Value *v = nullptr;
    SrcType t;
};

/** A named local variable slot (unique per declaration). */
struct VarSlot
{
    SrcType type;
    unsigned id;
    std::string name;
};

class FuncGen;

/** Module-wide generation state. */
class ModGen
{
  public:
    explicit ModGen(const ast::Program &p) : prog_(p) {}

    std::unique_ptr<Module> run();

    Module *module() const { return module_.get(); }

    Global *
    findGlobal(const std::string &name) const
    {
        auto it = globals_.find(name);
        return it == globals_.end() ? nullptr : it->second;
    }

    SrcType
    globalType(const std::string &name) const
    {
        return globalTypes_.at(name);
    }

    bool
    globalIsArray(const std::string &name) const
    {
        return arrayFlags_.at(name);
    }

    Function *
    findFunction(const std::string &name) const
    {
        auto it = funcs_.find(name);
        return it == funcs_.end() ? nullptr : it->second;
    }

    SrcType
    funcRetType(const std::string &name) const
    {
        return funcRets_.at(name);
    }

    const std::vector<SrcType> &
    funcParams(const std::string &name) const
    {
        return funcParamTypes_.at(name);
    }

  private:
    const ast::Program &prog_;
    std::unique_ptr<Module> module_;
    std::map<std::string, Global *> globals_;
    std::map<std::string, SrcType> globalTypes_;
    std::map<std::string, bool> arrayFlags_;
    std::map<std::string, Function *> funcs_;
    std::map<std::string, SrcType> funcRets_;
    std::map<std::string, std::vector<SrcType>> funcParamTypes_;
};

/** Per-function generation: statements, expressions and SSA state. */
class FuncGen
{
  public:
    FuncGen(ModGen &mg, Function *f, const ast::FuncDecl &decl)
        : mg_(mg), b_(mg.module()), f_(f), decl_(decl)
    {}

    void
    run()
    {
        BasicBlock *entry = f_->addBlock("entry");
        sealed_.insert(entry);
        b_.setInsertPoint(entry);

        pushScope();
        for (size_t i = 0; i < decl_.params.size(); ++i) {
            VarSlot *slot =
                declareVar(decl_.params[i].second, decl_.params[i].first,
                           decl_.line);
            writeVar(slot, entry, f_->arg(i));
        }

        genStmt(*decl_.body);

        // Fall off the end: implicit return (0 for non-void mains).
        if (!b_.insertBlock()->hasTerminator()) {
            if (decl_.retType.isVoid())
                b_.ret();
            else
                b_.ret(mg_.module()->getConst(irType(decl_.retType), 0));
        }
        popScope();
    }

  private:
    [[noreturn]] void
    err(int line, const std::string &msg)
    {
        fatal(strFormat("line %d: %s", line, msg.c_str()));
    }

    static Type irType(SrcType t) { return Type(t.bits); }

    // ----- Scopes and SSA (Braun et al.) -----

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    VarSlot *
    declareVar(const std::string &name, SrcType type, int line)
    {
        if (scopes_.back().count(name))
            err(line, "redeclaration of " + name);
        slots_.push_back(std::make_unique<VarSlot>(
            VarSlot{type, static_cast<unsigned>(slots_.size()), name}));
        scopes_.back()[name] = slots_.back().get();
        return slots_.back().get();
    }

    VarSlot *
    lookupVar(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        return nullptr;
    }

    void
    writeVar(VarSlot *slot, BasicBlock *bb, Value *v)
    {
        def_[slot->id][bb] = v;
    }

    Value *
    readVar(VarSlot *slot, BasicBlock *bb)
    {
        auto &per_block = def_[slot->id];
        auto it = per_block.find(bb);
        if (it != per_block.end())
            return it->second;
        return readVarRecursive(slot, bb);
    }

    Value *
    readVarRecursive(VarSlot *slot, BasicBlock *bb)
    {
        Value *val = nullptr;
        if (!sealed_.count(bb)) {
            // Incomplete CFG: placeholder phi, completed at seal time.
            Instruction *phi = newPhi(bb, slot);
            incomplete_[bb].emplace_back(slot, phi);
            val = phi;
        } else if (preds_[bb].size() == 1) {
            val = readVar(slot, preds_[bb][0]);
        } else {
            Instruction *phi = newPhi(bb, slot);
            writeVar(slot, bb, phi);
            addPhiOperands(slot, phi, bb);
            val = phi;
        }
        writeVar(slot, bb, val);
        return val;
    }

    Instruction *
    newPhi(BasicBlock *bb, VarSlot *slot)
    {
        BasicBlock *saved = b_.insertBlock();
        b_.setInsertPoint(bb);
        Instruction *phi = b_.phi(irType(slot->type), slot->name);
        b_.setInsertPoint(saved);
        return phi;
    }

    void
    addPhiOperands(VarSlot *slot, Instruction *phi, BasicBlock *bb)
    {
        for (BasicBlock *pred : preds_[bb])
            IRBuilder::addIncoming(phi, readVar(slot, pred), pred);
    }

    void
    sealBlock(BasicBlock *bb)
    {
        bsAssert(!sealed_.count(bb), "double seal of " + bb->name());
        auto it = incomplete_.find(bb);
        if (it != incomplete_.end()) {
            for (auto &[slot, phi] : it->second)
                addPhiOperands(slot, phi, bb);
            incomplete_.erase(it);
        }
        sealed_.insert(bb);
    }

    /** Emit a branch, recording the CFG edge for SSA construction. */
    void
    branchTo(BasicBlock *dest)
    {
        preds_[dest].push_back(b_.insertBlock());
        b_.br(dest);
    }

    void
    condBranchTo(Value *cond, BasicBlock *t, BasicBlock *f)
    {
        preds_[t].push_back(b_.insertBlock());
        preds_[f].push_back(b_.insertBlock());
        b_.condBr(cond, t, f);
    }

    /** Start a fresh unreachable block after return/break/continue. */
    void
    startDeadBlock()
    {
        BasicBlock *dead = f_->addBlock("dead");
        sealed_.insert(dead);
        b_.setInsertPoint(dead);
    }

    // ----- Type rules -----

    /** C-like usual arithmetic conversions with 32-bit promotion. */
    static SrcType
    commonType(SrcType a, SrcType b)
    {
        unsigned bits = std::max({32u, a.bits, b.bits});
        bool sign;
        if (a.bits == b.bits) {
            sign = a.isSigned && b.isSigned;
        } else {
            // The wider operand's signedness wins (it can represent the
            // promoted narrower operand either way).
            sign = (a.bits > b.bits ? a : b).isSigned;
        }
        if (bits > a.bits && bits > b.bits && a.bits != b.bits) {
            // Both strictly promoted: default to signed int unless
            // either side was unsigned at max width (cannot happen
            // here); keep the rule above.
        }
        return {bits, sign};
    }

    /** Convert a typed value to @p to (extend by source sign, or
     *  truncate). Equal widths are free: signedness lives in ops. */
    TV
    convert(TV x, SrcType to)
    {
        if (x.t.bits == to.bits)
            return {x.v, to};
        Value *v;
        if (x.t.bits < to.bits) {
            if (x.t.isSigned)
                v = b_.sext(x.v, irType(to));
            else
                v = b_.zext(x.v, irType(to));
        } else {
            v = b_.trunc(x.v, irType(to));
        }
        return {v, to};
    }

    /** Comparisons yield i1; widen to a value type on demand. */
    TV
    materializeBool(TV x)
    {
        if (x.t.bits != 1)
            return x;
        return {b_.zext(x.v, Type::i32()), SrcType{32, false}};
    }

    TV
    promote(TV x)
    {
        x = materializeBool(x);
        if (x.t.bits >= 32)
            return x;
        return convert(x, SrcType{32, x.t.isSigned});
    }

    // ----- Expressions -----

    TV
    genExpr(const Expr &e)
    {
        if (e.line > 0)
            b_.setCurLine(e.line);
        switch (e.kind) {
          case ExprKind::IntLit: {
            SrcType t{e.intValue > 0xffffffffULL ? 64u : 32u, false};
            // Small decimal literals behave like signed ints so that
            // `x - 1` on signed x stays signed.
            if (e.intValue <= 0x7fffffffULL)
                t.isSigned = true;
            return {mg_.module()->getConst(irType(t), e.intValue), t};
          }
          case ExprKind::VarRef: {
            if (VarSlot *slot = lookupVar(e.name))
                return {readVar(slot, b_.insertBlock()), slot->type};
            if (Global *g = mg_.findGlobal(e.name)) {
                if (mg_.globalIsArray(e.name))
                    err(e.line, "array used without index: " + e.name);
                SrcType t = mg_.globalType(e.name);
                Value *v = b_.load(irType(t), b_.globalAddr(g));
                return {v, t};
            }
            err(e.line, "unknown variable: " + e.name);
          }
          case ExprKind::Index: {
            auto [addr, t] = genElemAddr(e);
            return {b_.load(irType(t), addr), t};
          }
          case ExprKind::Unary:
            return genUnary(e);
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Logical:
          case ExprKind::Ternary:
            return genControlExpr(e);
          case ExprKind::Cast: {
            TV x = materializeBool(genExpr(*e.children[0]));
            return convert(x, e.castType);
          }
          case ExprKind::Call:
            return genCall(e);
        }
        panic("genExpr: bad kind");
    }

    /** Address and element type of g[idx]. */
    std::pair<Value *, SrcType>
    genElemAddr(const Expr &e)
    {
        Global *g = mg_.findGlobal(e.name);
        if (!g)
            err(e.line, "unknown array: " + e.name);
        if (!mg_.globalIsArray(e.name))
            err(e.line, "indexing a scalar: " + e.name);
        SrcType t = mg_.globalType(e.name);
        TV idx = materializeBool(genExpr(*e.children[0]));
        // Addresses are 32-bit.
        TV idx32 = convert(idx, SrcType{32, false});
        unsigned size = t.bits / 8;
        Value *off = idx32.v;
        if (size > 1) {
            off = b_.mul(idx32.v,
                         mg_.module()->getConst(Type::i32(), size));
        }
        Value *addr = b_.add(b_.globalAddr(g), off);
        return {addr, t};
    }

    TV
    genUnary(const Expr &e)
    {
        if (e.unOp == UnOp::LogicalNot) {
            TV x = materializeBool(genExpr(*e.children[0]));
            Value *z = b_.icmp(CmpPred::EQ, x.v,
                               mg_.module()->getConst(irType(x.t), 0));
            return {z, SrcType{1, false}};
        }
        TV x = promote(genExpr(*e.children[0]));
        if (e.unOp == UnOp::Neg) {
            Value *v = b_.sub(mg_.module()->getConst(irType(x.t), 0), x.v);
            return {v, SrcType{x.t.bits, true}};
        }
        // Bitwise not.
        Value *v = b_.bxor(x.v,
                           mg_.module()->getConst(irType(x.t), ~0ULL));
        return {v, x.t};
    }

    TV
    applyBin(BinOp op, TV a, TV b, int line)
    {
        // Shifts: result has the promoted LHS type.
        if (op == BinOp::Shl || op == BinOp::Shr) {
            TV lhs = promote(a);
            TV amt = convert(materializeBool(b), lhs.t);
            Value *v = op == BinOp::Shl
                           ? b_.shl(lhs.v, amt.v)
                           : (lhs.t.isSigned ? b_.ashr(lhs.v, amt.v)
                                             : b_.lshr(lhs.v, amt.v));
            return {v, lhs.t};
        }

        TV pa = materializeBool(a), pb = materializeBool(b);
        SrcType ct = commonType(pa.t, pb.t);
        TV xa = convert(pa, ct), xb = convert(pb, ct);

        switch (op) {
          case BinOp::Add: return {b_.add(xa.v, xb.v), ct};
          case BinOp::Sub: return {b_.sub(xa.v, xb.v), ct};
          case BinOp::Mul: return {b_.mul(xa.v, xb.v), ct};
          case BinOp::Div:
            return {ct.isSigned ? b_.sdiv(xa.v, xb.v)
                                : b_.udiv(xa.v, xb.v), ct};
          case BinOp::Rem:
            return {ct.isSigned ? b_.srem(xa.v, xb.v)
                                : b_.urem(xa.v, xb.v), ct};
          case BinOp::And: return {b_.band(xa.v, xb.v), ct};
          case BinOp::Or: return {b_.bor(xa.v, xb.v), ct};
          case BinOp::Xor: return {b_.bxor(xa.v, xb.v), ct};
          case BinOp::Lt:
            return {b_.icmp(ct.isSigned ? CmpPred::SLT : CmpPred::ULT,
                            xa.v, xb.v), SrcType{1, false}};
          case BinOp::Gt:
            return {b_.icmp(ct.isSigned ? CmpPred::SGT : CmpPred::UGT,
                            xa.v, xb.v), SrcType{1, false}};
          case BinOp::Le:
            return {b_.icmp(ct.isSigned ? CmpPred::SLE : CmpPred::ULE,
                            xa.v, xb.v), SrcType{1, false}};
          case BinOp::Ge:
            return {b_.icmp(ct.isSigned ? CmpPred::SGE : CmpPred::UGE,
                            xa.v, xb.v), SrcType{1, false}};
          case BinOp::Eq:
            return {b_.icmp(CmpPred::EQ, xa.v, xb.v), SrcType{1, false}};
          case BinOp::Ne:
            return {b_.icmp(CmpPred::NE, xa.v, xb.v), SrcType{1, false}};
          default:
            err(line, "bad binary operator");
        }
    }

    TV
    genBinary(const Expr &e)
    {
        TV a = genExpr(*e.children[0]);
        TV b = genExpr(*e.children[1]);
        return applyBin(e.binOp, a, b, e.line);
    }

    /** Short-circuit logic and ternaries via control flow + phi. */
    TV
    genControlExpr(const Expr &e)
    {
        if (e.kind == ExprKind::Logical) {
            BasicBlock *rhs_bb = f_->addBlock("logic.rhs");
            BasicBlock *merge = f_->addBlock("logic.end");

            Value *lhs = genCond(*e.children[0]);
            BasicBlock *lhs_end = b_.insertBlock();
            if (e.logicalAnd)
                condBranchTo(lhs, rhs_bb, merge);
            else
                condBranchTo(lhs, merge, rhs_bb);
            sealBlock(rhs_bb);

            b_.setInsertPoint(rhs_bb);
            Value *rhs = genCond(*e.children[1]);
            BasicBlock *rhs_end = b_.insertBlock();
            branchTo(merge);
            sealBlock(merge);

            b_.setInsertPoint(merge);
            Instruction *phi = b_.phi(Type::i1(), "logic");
            IRBuilder::addIncoming(
                phi, mg_.module()->getConst(Type::i1(),
                                            e.logicalAnd ? 0 : 1),
                lhs_end);
            IRBuilder::addIncoming(phi, rhs, rhs_end);
            return {phi, SrcType{1, false}};
        }

        // Ternary.
        BasicBlock *then_bb = f_->addBlock("sel.then");
        BasicBlock *else_bb = f_->addBlock("sel.else");
        BasicBlock *merge = f_->addBlock("sel.end");

        Value *cond = genCond(*e.children[0]);
        condBranchTo(cond, then_bb, else_bb);
        sealBlock(then_bb);
        sealBlock(else_bb);

        b_.setInsertPoint(then_bb);
        TV tv = promote(genExpr(*e.children[1]));
        BasicBlock *then_end = b_.insertBlock();

        b_.setInsertPoint(else_bb);
        TV fv = promote(genExpr(*e.children[2]));
        BasicBlock *else_end = b_.insertBlock();

        SrcType ct = commonType(tv.t, fv.t);
        b_.setInsertPoint(then_end);
        TV tvc = convert(tv, ct);
        branchTo(merge);
        b_.setInsertPoint(else_end);
        TV fvc = convert(fv, ct);
        branchTo(merge);
        sealBlock(merge);

        b_.setInsertPoint(merge);
        Instruction *phi = b_.phi(irType(ct), "sel");
        IRBuilder::addIncoming(phi, tvc.v, then_end);
        IRBuilder::addIncoming(phi, fvc.v, else_end);
        return {phi, ct};
    }

    TV
    genCall(const Expr &e)
    {
        if (e.name == "out") {
            if (e.children.size() != 1)
                err(e.line, "out() takes one argument");
            TV x = materializeBool(genExpr(*e.children[0]));
            b_.output(x.v);
            return {nullptr, SrcType{0, false}};
        }
        Function *callee = mg_.findFunction(e.name);
        if (!callee)
            err(e.line, "unknown function: " + e.name);
        const auto &params = mg_.funcParams(e.name);
        if (params.size() != e.children.size())
            err(e.line, "wrong argument count calling " + e.name);
        std::vector<Value *> args;
        for (size_t i = 0; i < params.size(); ++i) {
            TV a = materializeBool(genExpr(*e.children[i]));
            args.push_back(convert(a, params[i]).v);
        }
        Instruction *call = b_.call(callee, args, e.name + ".ret");
        return {call, mg_.funcRetType(e.name)};
    }

    /** Evaluate an expression as an i1 condition. */
    Value *
    genCond(const Expr &e)
    {
        TV x = genExpr(e);
        if (x.t.bits == 1)
            return x.v;
        return b_.icmp(CmpPred::NE, x.v,
                       mg_.module()->getConst(irType(x.t), 0));
    }

    // ----- Statements -----

    void
    genAssign(const Stmt &s)
    {
        const Expr &target = *s.target;
        auto rhs = [&]() -> TV {
            TV val = genExpr(*s.expr);
            if (!s.isCompound)
                return val;
            // Compound: read current value, apply op.
            TV cur = genExpr(target);
            return applyBin(s.compoundOp, cur, val, s.line);
        };

        if (target.kind == ExprKind::VarRef) {
            if (VarSlot *slot = lookupVar(target.name)) {
                TV val = convert(materializeBool(rhs()), slot->type);
                writeVar(slot, b_.insertBlock(), val.v);
                return;
            }
            Global *g = mg_.findGlobal(target.name);
            if (!g || mg_.globalIsArray(target.name))
                err(s.line, "cannot assign: " + target.name);
            SrcType t = mg_.globalType(target.name);
            TV val = convert(materializeBool(rhs()), t);
            b_.store(b_.globalAddr(g), val.v);
            return;
        }
        if (target.kind == ExprKind::Index) {
            // Note: the index expression is evaluated again for
            // compound assignment; side effects in indices are
            // unsupported (documented limitation).
            TV val = materializeBool(rhs());
            auto [addr, t] = genElemAddr(target);
            b_.store(addr, convert(val, t).v);
            return;
        }
        err(s.line, "bad assignment target");
    }

    void
    genStmt(const Stmt &s)
    {
        if (s.line > 0)
            b_.setCurLine(s.line);
        switch (s.kind) {
          case StmtKind::Block: {
            pushScope();
            for (const auto &child : s.body)
                genStmt(*child);
            popScope();
            return;
          }
          case StmtKind::Decl: {
            VarSlot *slot = declareVar(s.name, s.declType, s.line);
            Value *init;
            if (s.expr) {
                TV val = convert(materializeBool(genExpr(*s.expr)),
                                 s.declType);
                init = val.v;
            } else {
                init = mg_.module()->getConst(irType(s.declType), 0);
            }
            writeVar(slot, b_.insertBlock(), init);
            return;
          }
          case StmtKind::Assign:
            genAssign(s);
            return;
          case StmtKind::If: {
            BasicBlock *then_bb = f_->addBlock("if.then");
            BasicBlock *else_bb =
                s.elseS ? f_->addBlock("if.else") : nullptr;
            BasicBlock *merge = f_->addBlock("if.end");

            Value *cond = genCond(*s.expr);
            condBranchTo(cond, then_bb, else_bb ? else_bb : merge);
            sealBlock(then_bb);
            if (else_bb)
                sealBlock(else_bb);

            b_.setInsertPoint(then_bb);
            genStmt(*s.thenS);
            if (!b_.insertBlock()->hasTerminator())
                branchTo(merge);

            if (else_bb) {
                b_.setInsertPoint(else_bb);
                genStmt(*s.elseS);
                if (!b_.insertBlock()->hasTerminator())
                    branchTo(merge);
            }
            sealBlock(merge);
            b_.setInsertPoint(merge);
            return;
          }
          case StmtKind::While: {
            BasicBlock *header = f_->addBlock("while.cond");
            BasicBlock *body = f_->addBlock("while.body");
            BasicBlock *exit = f_->addBlock("while.end");

            branchTo(header); // Unsealed: latches still unknown.
            b_.setInsertPoint(header);
            Value *cond = genCond(*s.expr);
            condBranchTo(cond, body, exit);
            sealBlock(body);

            loopStack_.push_back({header, exit});
            b_.setInsertPoint(body);
            genStmt(*s.thenS);
            if (!b_.insertBlock()->hasTerminator())
                branchTo(header);
            loopStack_.pop_back();

            sealBlock(header);
            sealBlock(exit);
            b_.setInsertPoint(exit);
            return;
          }
          case StmtKind::DoWhile: {
            BasicBlock *body = f_->addBlock("do.body");
            BasicBlock *cond_bb = f_->addBlock("do.cond");
            BasicBlock *exit = f_->addBlock("do.end");

            branchTo(body); // Unsealed: back edge still unknown.
            loopStack_.push_back({cond_bb, exit});
            b_.setInsertPoint(body);
            genStmt(*s.thenS);
            if (!b_.insertBlock()->hasTerminator())
                branchTo(cond_bb);
            loopStack_.pop_back();
            sealBlock(cond_bb);

            b_.setInsertPoint(cond_bb);
            Value *cond = genCond(*s.expr);
            condBranchTo(cond, body, exit);
            sealBlock(body);
            sealBlock(exit);
            b_.setInsertPoint(exit);
            return;
          }
          case StmtKind::For: {
            pushScope(); // The init declaration scopes to the loop.
            if (s.forInit)
                genStmt(*s.forInit);

            BasicBlock *header = f_->addBlock("for.cond");
            BasicBlock *body = f_->addBlock("for.body");
            BasicBlock *step_bb = f_->addBlock("for.step");
            BasicBlock *exit = f_->addBlock("for.end");

            branchTo(header);
            b_.setInsertPoint(header);
            if (s.expr) {
                Value *cond = genCond(*s.expr);
                condBranchTo(cond, body, exit);
            } else {
                branchTo(body);
            }
            sealBlock(body);

            loopStack_.push_back({step_bb, exit});
            b_.setInsertPoint(body);
            genStmt(*s.thenS);
            if (!b_.insertBlock()->hasTerminator())
                branchTo(step_bb);
            loopStack_.pop_back();
            sealBlock(step_bb);

            b_.setInsertPoint(step_bb);
            if (s.forStep)
                genStmt(*s.forStep);
            branchTo(header);
            sealBlock(header);
            sealBlock(exit);
            b_.setInsertPoint(exit);
            popScope();
            return;
          }
          case StmtKind::Return: {
            if (s.expr) {
                if (decl_.retType.isVoid())
                    err(s.line, "returning a value from void function");
                TV val = convert(materializeBool(genExpr(*s.expr)),
                                 decl_.retType);
                b_.ret(val.v);
            } else {
                if (!decl_.retType.isVoid())
                    err(s.line, "missing return value");
                b_.ret();
            }
            startDeadBlock();
            return;
          }
          case StmtKind::Break: {
            if (loopStack_.empty())
                err(s.line, "break outside loop");
            branchTo(loopStack_.back().second);
            startDeadBlock();
            return;
          }
          case StmtKind::Continue: {
            if (loopStack_.empty())
                err(s.line, "continue outside loop");
            branchTo(loopStack_.back().first);
            startDeadBlock();
            return;
          }
          case StmtKind::ExprStmt:
            genExpr(*s.expr);
            return;
          }
        panic("genStmt: bad kind");
    }

    ModGen &mg_;
    IRBuilder b_;
    Function *f_;
    const ast::FuncDecl &decl_;

    std::vector<std::map<std::string, VarSlot *>> scopes_;
    std::vector<std::unique_ptr<VarSlot>> slots_;
    std::map<unsigned, std::map<BasicBlock *, Value *>> def_;
    std::set<BasicBlock *> sealed_;
    std::map<BasicBlock *, std::vector<BasicBlock *>> preds_;
    std::map<BasicBlock *,
             std::vector<std::pair<VarSlot *, Instruction *>>> incomplete_;
    /** (continue target, break target). */
    std::vector<std::pair<BasicBlock *, BasicBlock *>> loopStack_;
};

std::unique_ptr<Module>
ModGen::run()
{
    module_ = std::make_unique<Module>();

    for (const auto &g : prog_.globals) {
        if (globals_.count(g.name))
            fatal("duplicate global: " + g.name);
        size_t count = g.isArray ? g.arraySize : 1;
        Global *irg = module_->addGlobal(g.name, g.elemType.bits, count);
        globals_[g.name] = irg;
        globalTypes_[g.name] = g.elemType;
        arrayFlags_[g.name] = g.isArray;
        if (!g.strInit.empty()) {
            if (g.strInit.size() + 1 > count)
                fatal("string initialiser too long for " + g.name);
            for (size_t i = 0; i < g.strInit.size(); ++i)
                irg->setElem(i, static_cast<uint8_t>(g.strInit[i]));
        } else {
            if (g.init.size() > count)
                fatal("too many initialisers for " + g.name);
            for (size_t i = 0; i < g.init.size(); ++i)
                irg->setElem(i, g.init[i]);
        }
    }

    // Declare all functions first so calls can be forward/recursive.
    for (const auto &fd : prog_.functions) {
        if (funcs_.count(fd.name))
            fatal("duplicate function: " + fd.name);
        std::vector<Type> params;
        std::vector<SrcType> ptypes;
        for (const auto &[pt, pn] : fd.params) {
            params.push_back(Type(pt.bits));
            ptypes.push_back(pt);
        }
        Function *f = module_->addFunction(fd.name, Type(fd.retType.bits),
                                           params);
        for (size_t i = 0; i < fd.params.size(); ++i)
            f->arg(i)->setName(fd.params[i].second);
        funcs_[fd.name] = f;
        funcRets_[fd.name] = fd.retType;
        funcParamTypes_[fd.name] = std::move(ptypes);
    }

    for (const auto &fd : prog_.functions)
        FuncGen(*this, funcs_[fd.name], fd).run();

    return std::move(module_);
}

} // namespace

std::unique_ptr<Module>
generateIR(const ast::Program &program)
{
    return ModGen(program).run();
}

std::unique_ptr<Module>
compileSource(const std::string &source)
{
    trace::Span span("frontend.compile", "compile");
    ast::Program prog = [&] {
        trace::Span s("frontend.parse", "compile");
        return parseProgram(source);
    }();
    auto module = [&] {
        trace::Span s("frontend.irgen", "compile");
        return generateIR(prog);
    }();
    {
        trace::Span s("frontend.cleanup", "compile");
        for (const auto &f : module->functions()) {
            simplifyTrivialPhis(*f);
            removeUnreachableBlocks(*f);
            simplifyTrivialPhis(*f);
            deadCodeElim(*f);
        }
    }
    {
        trace::Span s("frontend.verify", "compile");
        verifyOrDie(*module, "after front-end lowering");
    }
    span.arg("functions",
             std::to_string(module->functions().size()));
    return module;
}

} // namespace bitspec
