#include "frontend/parser.h"

#include "frontend/lexer.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

using namespace ast;

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    Program
    run()
    {
        Program p;
        while (peek().kind != Tok::End) {
            // Both globals and functions start with: type ident.
            SrcType type = parseType();
            Token name = expect(Tok::Ident);
            if (peek().kind == Tok::LParen) {
                p.functions.push_back(parseFunction(type, name));
            } else {
                p.globals.push_back(parseGlobal(type, name));
            }
        }
        return p;
    }

  private:
    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    Token
    advance()
    {
        Token t = peek();
        if (pos_ < toks_.size() - 1)
            ++pos_;
        return t;
    }

    bool
    accept(Tok kind)
    {
        if (peek().kind != kind)
            return false;
        advance();
        return true;
    }

    Token
    expect(Tok kind)
    {
        if (peek().kind != kind) {
            fatal(strFormat("parse error at %d:%d: expected '%s', got '%s'",
                            peek().line, peek().col, tokName(kind),
                            tokName(peek().kind)));
        }
        return advance();
    }

    bool
    isTypeToken(Tok t) const
    {
        switch (t) {
          case Tok::KwVoid: case Tok::KwU8: case Tok::KwU16:
          case Tok::KwU32: case Tok::KwU64: case Tok::KwI8:
          case Tok::KwI16: case Tok::KwI32: case Tok::KwI64:
            return true;
          default:
            return false;
        }
    }

    SrcType
    parseType()
    {
        Token t = advance();
        switch (t.kind) {
          case Tok::KwVoid: return {0, false};
          case Tok::KwU8: return {8, false};
          case Tok::KwU16: return {16, false};
          case Tok::KwU32: return {32, false};
          case Tok::KwU64: return {64, false};
          case Tok::KwI8: return {8, true};
          case Tok::KwI16: return {16, true};
          case Tok::KwI32: return {32, true};
          case Tok::KwI64: return {64, true};
          default:
            fatal(strFormat("parse error at %d:%d: expected a type",
                            t.line, t.col));
        }
    }

    GlobalDecl
    parseGlobal(SrcType type, const Token &name)
    {
        GlobalDecl g;
        g.name = name.text;
        g.elemType = type;
        g.line = name.line;
        if (type.isVoid())
            fatal("global cannot be void: " + g.name);
        if (accept(Tok::LBracket)) {
            g.isArray = true;
            g.arraySize = expect(Tok::IntLit).intValue;
            if (g.arraySize == 0)
                fatal("zero-sized array: " + g.name);
            expect(Tok::RBracket);
        }
        if (accept(Tok::Assign)) {
            if (peek().kind == Tok::StrLit) {
                Token s = advance();
                if (!g.isArray || g.elemType.bits != 8)
                    fatal("string initialiser needs a u8 array: " + g.name);
                g.strInit = s.text;
            } else if (accept(Tok::LBrace)) {
                if (!g.isArray)
                    fatal("brace initialiser on scalar: " + g.name);
                if (!accept(Tok::RBrace)) {
                    do {
                        g.init.push_back(parseConstExpr());
                    } while (accept(Tok::Comma));
                    expect(Tok::RBrace);
                }
            } else {
                g.init.push_back(parseConstExpr());
            }
        }
        expect(Tok::Semi);
        return g;
    }

    /** Tiny constant expressions for initialisers: literal with
     *  optional unary minus/tilde. */
    uint64_t
    parseConstExpr()
    {
        if (accept(Tok::Minus))
            return 0 - parseConstExpr();
        if (accept(Tok::Tilde))
            return ~parseConstExpr();
        return expect(Tok::IntLit).intValue;
    }

    FuncDecl
    parseFunction(SrcType ret, const Token &name)
    {
        FuncDecl f;
        f.name = name.text;
        f.retType = ret;
        f.line = name.line;
        expect(Tok::LParen);
        if (!accept(Tok::RParen)) {
            do {
                if (accept(Tok::KwVoid))
                    break; // f(void)
                SrcType pt = parseType();
                Token pn = expect(Tok::Ident);
                f.params.emplace_back(pt, pn.text);
            } while (accept(Tok::Comma));
            expect(Tok::RParen);
        }
        f.body = parseBlock();
        return f;
    }

    std::unique_ptr<Stmt>
    makeStmt(StmtKind kind, int line)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = line;
        return s;
    }

    std::unique_ptr<Stmt>
    parseBlock()
    {
        Token open = expect(Tok::LBrace);
        auto block = makeStmt(StmtKind::Block, open.line);
        while (!accept(Tok::RBrace))
            block->body.push_back(parseStatement());
        return block;
    }

    std::unique_ptr<Stmt>
    parseStatement()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::LBrace:
            return parseBlock();
          case Tok::KwIf:
            return parseIf();
          case Tok::KwWhile:
            return parseWhile();
          case Tok::KwDo:
            return parseDoWhile();
          case Tok::KwFor:
            return parseFor();
          case Tok::KwReturn: {
            advance();
            auto s = makeStmt(StmtKind::Return, t.line);
            if (peek().kind != Tok::Semi)
                s->expr = parseExpr();
            expect(Tok::Semi);
            return s;
          }
          case Tok::KwBreak: {
            advance();
            expect(Tok::Semi);
            return makeStmt(StmtKind::Break, t.line);
          }
          case Tok::KwContinue: {
            advance();
            expect(Tok::Semi);
            return makeStmt(StmtKind::Continue, t.line);
          }
          default:
            if (isTypeToken(t.kind))
                return parseDecl();
            return parseExprOrAssign(true);
        }
    }

    std::unique_ptr<Stmt>
    parseDecl()
    {
        int line = peek().line;
        SrcType type = parseType();
        if (type.isVoid())
            fatal(strFormat("line %d: void variable", line));
        Token name = expect(Tok::Ident);
        auto s = makeStmt(StmtKind::Decl, line);
        s->declType = type;
        s->name = name.text;
        if (accept(Tok::Assign))
            s->expr = parseExpr();
        expect(Tok::Semi);
        return s;
    }

    std::unique_ptr<Stmt>
    parseIf()
    {
        Token kw = expect(Tok::KwIf);
        auto s = makeStmt(StmtKind::If, kw.line);
        expect(Tok::LParen);
        s->expr = parseExpr();
        expect(Tok::RParen);
        s->thenS = parseStatement();
        if (accept(Tok::KwElse))
            s->elseS = parseStatement();
        return s;
    }

    std::unique_ptr<Stmt>
    parseWhile()
    {
        Token kw = expect(Tok::KwWhile);
        auto s = makeStmt(StmtKind::While, kw.line);
        expect(Tok::LParen);
        s->expr = parseExpr();
        expect(Tok::RParen);
        s->thenS = parseStatement();
        return s;
    }

    std::unique_ptr<Stmt>
    parseDoWhile()
    {
        Token kw = expect(Tok::KwDo);
        auto s = makeStmt(StmtKind::DoWhile, kw.line);
        s->thenS = parseStatement();
        expect(Tok::KwWhile);
        expect(Tok::LParen);
        s->expr = parseExpr();
        expect(Tok::RParen);
        expect(Tok::Semi);
        return s;
    }

    std::unique_ptr<Stmt>
    parseFor()
    {
        Token kw = expect(Tok::KwFor);
        auto s = makeStmt(StmtKind::For, kw.line);
        expect(Tok::LParen);
        if (!accept(Tok::Semi)) {
            if (isTypeToken(peek().kind)) {
                s->forInit = parseDecl(); // Consumes the ';'.
            } else {
                s->forInit = parseExprOrAssign(true);
            }
        }
        if (peek().kind != Tok::Semi)
            s->expr = parseExpr();
        expect(Tok::Semi);
        if (peek().kind != Tok::RParen)
            s->forStep = parseExprOrAssign(false);
        expect(Tok::RParen);
        s->thenS = parseStatement();
        return s;
    }

    /**
     * Expression statement or assignment. @p eat_semi: statements eat
     * a trailing ';', the for-step does not.
     */
    std::unique_ptr<Stmt>
    parseExprOrAssign(bool eat_semi)
    {
        int line = peek().line;
        auto lhs = parseExpr();

        std::unique_ptr<Stmt> s;
        Tok k = peek().kind;
        auto compound = [&](BinOp op) {
            advance();
            s = makeStmt(StmtKind::Assign, line);
            s->target = std::move(lhs);
            s->isCompound = true;
            s->compoundOp = op;
            s->expr = parseExpr();
        };

        switch (k) {
          case Tok::Assign:
            advance();
            s = makeStmt(StmtKind::Assign, line);
            s->target = std::move(lhs);
            s->expr = parseExpr();
            break;
          case Tok::PlusEq: compound(BinOp::Add); break;
          case Tok::MinusEq: compound(BinOp::Sub); break;
          case Tok::StarEq: compound(BinOp::Mul); break;
          case Tok::SlashEq: compound(BinOp::Div); break;
          case Tok::PercentEq: compound(BinOp::Rem); break;
          case Tok::AmpEq: compound(BinOp::And); break;
          case Tok::PipeEq: compound(BinOp::Or); break;
          case Tok::CaretEq: compound(BinOp::Xor); break;
          case Tok::ShlEq: compound(BinOp::Shl); break;
          case Tok::ShrEq: compound(BinOp::Shr); break;
          case Tok::PlusPlus:
          case Tok::MinusMinus: {
            // Postfix ++/-- as a statement: sugar for `x += 1`.
            advance();
            s = makeStmt(StmtKind::Assign, line);
            s->target = std::move(lhs);
            s->isCompound = true;
            s->compoundOp = (k == Tok::PlusPlus) ? BinOp::Add : BinOp::Sub;
            auto one = makeExpr(ExprKind::IntLit, line);
            one->intValue = 1;
            s->expr = std::move(one);
            break;
          }
          default:
            s = makeStmt(StmtKind::ExprStmt, line);
            s->expr = std::move(lhs);
            break;
        }
        if (eat_semi)
            expect(Tok::Semi);
        return s;
    }

    // --- Expressions (C precedence, lowest first) ---

    std::unique_ptr<Expr>
    makeExpr(ExprKind kind, int line)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = line;
        return e;
    }

    std::unique_ptr<Expr> parseExpr() { return parseTernary(); }

    std::unique_ptr<Expr>
    parseTernary()
    {
        auto cond = parseLogicalOr();
        if (!accept(Tok::Question))
            return cond;
        auto e = makeExpr(ExprKind::Ternary, cond->line);
        e->children.push_back(std::move(cond));
        e->children.push_back(parseExpr());
        expect(Tok::Colon);
        e->children.push_back(parseTernary());
        return e;
    }

    std::unique_ptr<Expr>
    parseLogicalOr()
    {
        auto lhs = parseLogicalAnd();
        while (peek().kind == Tok::PipePipe) {
            int line = advance().line;
            auto e = makeExpr(ExprKind::Logical, line);
            e->logicalAnd = false;
            e->children.push_back(std::move(lhs));
            e->children.push_back(parseLogicalAnd());
            lhs = std::move(e);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseLogicalAnd()
    {
        auto lhs = parseBitOr();
        while (peek().kind == Tok::AmpAmp) {
            int line = advance().line;
            auto e = makeExpr(ExprKind::Logical, line);
            e->logicalAnd = true;
            e->children.push_back(std::move(lhs));
            e->children.push_back(parseBitOr());
            lhs = std::move(e);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    binaryLevel(std::unique_ptr<Expr> (Parser::*sub)(),
                std::initializer_list<std::pair<Tok, BinOp>> ops)
    {
        auto lhs = (this->*sub)();
        for (;;) {
            bool matched = false;
            for (auto [tok, op] : ops) {
                if (peek().kind == tok) {
                    int line = advance().line;
                    auto e = makeExpr(ExprKind::Binary, line);
                    e->binOp = op;
                    e->children.push_back(std::move(lhs));
                    e->children.push_back((this->*sub)());
                    lhs = std::move(e);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return lhs;
        }
    }

    std::unique_ptr<Expr>
    parseBitOr()
    {
        return binaryLevel(&Parser::parseBitXor, {{Tok::Pipe, BinOp::Or}});
    }

    std::unique_ptr<Expr>
    parseBitXor()
    {
        return binaryLevel(&Parser::parseBitAnd,
                           {{Tok::Caret, BinOp::Xor}});
    }

    std::unique_ptr<Expr>
    parseBitAnd()
    {
        return binaryLevel(&Parser::parseEquality,
                           {{Tok::Amp, BinOp::And}});
    }

    std::unique_ptr<Expr>
    parseEquality()
    {
        return binaryLevel(&Parser::parseRelational,
                           {{Tok::EqEq, BinOp::Eq},
                            {Tok::NotEq, BinOp::Ne}});
    }

    std::unique_ptr<Expr>
    parseRelational()
    {
        return binaryLevel(&Parser::parseShift,
                           {{Tok::Lt, BinOp::Lt}, {Tok::Gt, BinOp::Gt},
                            {Tok::Le, BinOp::Le}, {Tok::Ge, BinOp::Ge}});
    }

    std::unique_ptr<Expr>
    parseShift()
    {
        return binaryLevel(&Parser::parseAdditive,
                           {{Tok::Shl, BinOp::Shl},
                            {Tok::Shr, BinOp::Shr}});
    }

    std::unique_ptr<Expr>
    parseAdditive()
    {
        return binaryLevel(&Parser::parseMultiplicative,
                           {{Tok::Plus, BinOp::Add},
                            {Tok::Minus, BinOp::Sub}});
    }

    std::unique_ptr<Expr>
    parseMultiplicative()
    {
        return binaryLevel(&Parser::parseUnary,
                           {{Tok::Star, BinOp::Mul},
                            {Tok::Slash, BinOp::Div},
                            {Tok::Percent, BinOp::Rem}});
    }

    std::unique_ptr<Expr>
    parseUnary()
    {
        const Token &t = peek();
        auto un = [&](UnOp op) {
            advance();
            auto e = makeExpr(ExprKind::Unary, t.line);
            e->unOp = op;
            e->children.push_back(parseUnary());
            return e;
        };
        switch (t.kind) {
          case Tok::Minus: return un(UnOp::Neg);
          case Tok::Tilde: return un(UnOp::Not);
          case Tok::Bang: return un(UnOp::LogicalNot);
          case Tok::LParen:
            // Cast: '(' type ')' unary.
            if (isTypeToken(peek(1).kind)) {
                advance();
                SrcType ct = parseType();
                expect(Tok::RParen);
                auto e = makeExpr(ExprKind::Cast, t.line);
                e->castType = ct;
                e->children.push_back(parseUnary());
                return e;
            }
            return parsePostfix();
          default:
            return parsePostfix();
        }
    }

    std::unique_ptr<Expr>
    parsePostfix()
    {
        return parsePrimary();
    }

    std::unique_ptr<Expr>
    parsePrimary()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::IntLit: {
            advance();
            auto e = makeExpr(ExprKind::IntLit, t.line);
            e->intValue = t.intValue;
            return e;
          }
          case Tok::LParen: {
            advance();
            auto e = parseExpr();
            expect(Tok::RParen);
            return e;
          }
          case Tok::Ident: {
            Token name = advance();
            if (peek().kind == Tok::LParen) {
                advance();
                auto e = makeExpr(ExprKind::Call, name.line);
                e->name = name.text;
                if (!accept(Tok::RParen)) {
                    do {
                        e->children.push_back(parseExpr());
                    } while (accept(Tok::Comma));
                    expect(Tok::RParen);
                }
                return e;
            }
            if (peek().kind == Tok::LBracket) {
                advance();
                auto e = makeExpr(ExprKind::Index, name.line);
                e->name = name.text;
                e->children.push_back(parseExpr());
                expect(Tok::RBracket);
                return e;
            }
            auto e = makeExpr(ExprKind::VarRef, name.line);
            e->name = name.text;
            return e;
          }
          default:
            fatal(strFormat(
                "parse error at %d:%d: unexpected '%s' in expression",
                t.line, t.col, tokName(t.kind)));
        }
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace

ast::Program
parseProgram(const std::string &source)
{
    return Parser(lex(source)).run();
}

} // namespace bitspec
