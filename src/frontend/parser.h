/**
 * @file
 * Recursive-descent parser for the BitSpec C subset.
 */

#ifndef BITSPEC_FRONTEND_PARSER_H_
#define BITSPEC_FRONTEND_PARSER_H_

#include <string>

#include "frontend/ast.h"

namespace bitspec
{

/** Parse @p source into an AST. Throws FatalError on syntax errors. */
ast::Program parseProgram(const std::string &source);

} // namespace bitspec

#endif // BITSPEC_FRONTEND_PARSER_H_
