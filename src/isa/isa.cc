#include "isa/isa.h"

#include <sstream>

#include "support/error.h"

namespace bitspec
{

const char *
mopName(MOp op)
{
    switch (op) {
      case MOp::ADD: return "add";
      case MOp::SUB: return "sub";
      case MOp::MUL: return "mul";
      case MOp::UDIV: return "udiv";
      case MOp::SDIV: return "sdiv";
      case MOp::AND: return "and";
      case MOp::ORR: return "orr";
      case MOp::EOR: return "eor";
      case MOp::LSL: return "lsl";
      case MOp::LSR: return "lsr";
      case MOp::ASR: return "asr";
      case MOp::MOV: return "mov";
      case MOp::MVN: return "mvn";
      case MOp::MOVW: return "movw";
      case MOp::MOVT: return "movt";
      case MOp::CMP: return "cmp";
      case MOp::SETCC: return "setcc";
      case MOp::SXTH: return "sxth";
      case MOp::UXTH: return "uxth";
      case MOp::LDR: return "ldr";
      case MOp::STR: return "str";
      case MOp::LDRH: return "ldrh";
      case MOp::STRH: return "strh";
      case MOp::LDRB: return "ldrb";
      case MOp::STRB: return "strb";
      case MOp::B: return "b";
      case MOp::BL: return "bl";
      case MOp::BXLR: return "bxlr";
      case MOp::OUT: return "out";
      case MOp::NOP: return "nop";
      case MOp::HALT: return "halt";
      case MOp::ADD8: return "add8";
      case MOp::SUB8: return "sub8";
      case MOp::AND8: return "and8";
      case MOp::ORR8: return "orr8";
      case MOp::EOR8: return "eor8";
      case MOp::CMP8: return "cmp8";
      case MOp::MOV8: return "mov8";
      case MOp::LDRS8: return "ldrs8";
      case MOp::LDRB8: return "ldrb8";
      case MOp::STRB8: return "strb8";
      case MOp::UXT8: return "uxt8";
      case MOp::SXT8: return "sxt8";
      case MOp::TRN8: return "trn8";
      case MOp::SETDELTA: return "setdelta";
      case MOp::MODE: return "mode";
    }
    panic("mopName: bad opcode");
}

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::AL: return "";
      case Cond::EQ: return "eq";
      case Cond::NE: return "ne";
      case Cond::LO: return "lo";
      case Cond::LS: return "ls";
      case Cond::HI: return "hi";
      case Cond::HS: return "hs";
      case Cond::LT: return "lt";
      case Cond::LE: return "le";
      case Cond::GT: return "gt";
      case Cond::GE: return "ge";
    }
    panic("condName: bad cond");
}

bool
writesFlags(MOp op)
{
    return op == MOp::CMP || op == MOp::CMP8;
}

bool
mayMisspeculate(const MachInst &inst)
{
    switch (inst.op) {
      case MOp::ADD8:
      case MOp::SUB8:
      case MOp::TRN8:
        // The non-speculative variants wrap/truncate silently (used by
        // exact demanded-bits narrowing, RQ2); the speculative ones
        // detect per Table 1.
        return inst.speculative;
      case MOp::LDRS8:
        return true;
      default:
        return false;
    }
}

namespace
{

std::string
opndStr(const MOpnd &o)
{
    switch (o.kind) {
      case MOpndKind::None: return "";
      case MOpndKind::Reg:
        if (o.reg == kRegSP)
            return "sp";
        if (o.reg == kRegLR)
            return "lr";
        return "r" + std::to_string(o.reg);
      case MOpndKind::Slice:
        return "r" + std::to_string(o.reg) + "b" +
               std::to_string(o.slice);
      case MOpndKind::Imm:
        return "#" + std::to_string(o.imm);
      case MOpndKind::VReg:
        return (o.vregIsSlice ? "%b" : "%w") + std::to_string(o.vreg);
    }
    return "?";
}

} // namespace

std::string
MachInst::str() const
{
    std::ostringstream os;
    os << mopName(op) << condName(cond);
    if (speculative)
        os << ".s";
    bool first = true;
    auto emit = [&](const MOpnd &o) {
        if (o.kind == MOpndKind::None)
            return;
        os << (first ? " " : ", ") << opndStr(o);
        first = false;
    };
    emit(dst);
    emit(a);
    emit(b);
    if (target >= 0)
        os << (first ? " " : ", ") << "->" << target;
    return os.str();
}

} // namespace bitspec
