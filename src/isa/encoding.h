/**
 * @file
 * Binary encoding of EMB32 instructions (fixed 32-bit words).
 *
 * Formats (op always in bits [31:26]):
 *  - ALU/mem:  [op][immf][spec][d:7][a:7][b:7 | imm:10]
 *  - MOV-like: [op][cond:4][immf][d:7][s:7 | imm:12]
 *  - Branch:   [op][cond:4][offset:22 signed, instruction units]
 *  - MOVW/T:   [op][d:7][imm:16]
 *  - System:   [op][imm:24]
 *
 * A register operand is 7 bits: [isSlice][reg:4][slice:2]. Provenance
 * tags (spill/copy/skeleton) are compiler metadata and not encoded.
 */

#ifndef BITSPEC_ISA_ENCODING_H_
#define BITSPEC_ISA_ENCODING_H_

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace bitspec
{

/** Encode one instruction. Branch targets must already be resolved
 *  to flat indices; @p self_index supplies the PC-relative base. */
uint32_t encodeInst(const MachInst &inst, uint32_t self_index);

/** Decode one instruction word. */
MachInst decodeInst(uint32_t word, uint32_t self_index);

/** Encode a whole instruction stream. */
std::vector<uint32_t> encodeProgram(const std::vector<MachInst> &insts);

/** Decode a whole instruction stream. */
std::vector<MachInst> decodeProgram(const std::vector<uint32_t> &words);

} // namespace bitspec

#endif // BITSPEC_ISA_ENCODING_H_
