/**
 * @file
 * EMB32: a 32-bit ARM-class RISC ISA with the BitSpec extensions of
 * paper Table 1.
 *
 * Conventions:
 *  - r0..r3, r12: scratch/argument registers (never allocated).
 *  - r4..r11: allocatable, callee-saved.
 *  - r13 = sp, r14 = lr, r15 = pc.
 *  - Fixed 4-byte instructions; large constants via MOVW/MOVT.
 *
 * BitSpec extensions operate on 8-bit register slices B = (reg,
 * slice). Speculative forms misspeculate per Table 1; on
 * misspeculation the core writes no result and sets PC += Δ, where Δ
 * is a special register loaded by SETDELTA (paper §3.3.4/§3.5). MODE
 * switches between bitspec and classic decoding (paper §3.4).
 */

#ifndef BITSPEC_ISA_ISA_H_
#define BITSPEC_ISA_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bitspec
{

/** Machine opcodes. */
enum class MOp : uint8_t
{
    // 32-bit ALU, register or immediate second operand.
    ADD, SUB, MUL, UDIV, SDIV,
    AND, ORR, EOR, LSL, LSR, ASR,
    MOV, MVN,
    MOVW,  ///< rd = imm16 (upper half cleared).
    MOVT,  ///< rd[31:16] = imm16.
    CMP,   ///< Set NZCV from rn - op2.
    SETCC, ///< rd = cond ? 1 : 0.
    SXTH, UXTH, ///< 16-bit sign/zero extension (for i16 support).

    // Memory: [rn + imm] or [rn + rm].
    LDR, STR, LDRH, STRH, LDRB, STRB,

    // Control flow.
    B,     ///< Unconditional (or cond != AL: conditional) branch.
    BL,    ///< Call: lr = next pc.
    BXLR,  ///< Return: pc = lr.

    // System.
    OUT,   ///< Emit rn to the observable output channel (volatile).
    NOP,
    HALT,

    // --- BitSpec extensions (Table 1) ---
    ADD8,   ///< Bd = Bn + (Bm|imm4); misspec on carry out.
    SUB8,   ///< Bd = Bn - (Bm|imm4); misspec on borrow.
    AND8, ORR8, EOR8, ///< Logic; never misspeculates.
    CMP8,   ///< cond(Bn op (Bm|imm4)); never misspeculates.
    MOV8,   ///< Bd = Bn|imm4..8 (slice move); never misspeculates.
    LDRS8,  ///< Spec. load: Bd = Mem_orig[rn+off]; misspec if > 255.
    LDRB8,  ///< Bd = Mem8[rn+off]; never misspeculates.
    STRB8,  ///< Mem8[rn+off] = Bd; never misspeculates.
    UXT8,   ///< rd = ZeroExtend(Bn).
    SXT8,   ///< rd = SignExtend(Bn).
    TRN8,   ///< Bd = Truncate(rn); spec variant misspecs if rn > 255.

    SETDELTA, ///< delta = imm (misspeculation redirect distance).
    MODE,     ///< imm != 0: bitspec mode; 0: classic mode.
};

/** Condition codes for B/SETCC/… */
enum class Cond : uint8_t
{
    AL, EQ, NE, LO, LS, HI, HS, LT, LE, GT, GE,
};

const char *mopName(MOp op);
const char *condName(Cond c);

/** Operand classification of a machine instruction operand. */
enum class MOpndKind : uint8_t
{
    None,
    Reg,    ///< 32-bit register r0..r15.
    Slice,  ///< 8-bit slice: reg r0..r15, slice 0..3.
    Imm,    ///< Immediate (16-bit in the encoding).
    VReg,   ///< Virtual register (pre-allocation only).
};

/** One machine operand. */
struct MOpnd
{
    MOpndKind kind = MOpndKind::None;
    uint8_t reg = 0;    ///< Reg/Slice: register number.
    uint8_t slice = 0;  ///< Slice: byte index 0..3.
    int64_t imm = 0;    ///< Imm value.
    uint32_t vreg = 0;  ///< VReg id.
    bool vregIsSlice = false; ///< VReg wants a slice, not a full reg.

    static MOpnd
    makeReg(unsigned r)
    {
        MOpnd o;
        o.kind = MOpndKind::Reg;
        o.reg = static_cast<uint8_t>(r);
        return o;
    }

    static MOpnd
    makeSlice(unsigned r, unsigned s)
    {
        MOpnd o;
        o.kind = MOpndKind::Slice;
        o.reg = static_cast<uint8_t>(r);
        o.slice = static_cast<uint8_t>(s);
        return o;
    }

    static MOpnd
    makeImm(int64_t v)
    {
        MOpnd o;
        o.kind = MOpndKind::Imm;
        o.imm = v;
        return o;
    }

    static MOpnd
    makeVReg(uint32_t id, bool is_slice)
    {
        MOpnd o;
        o.kind = MOpndKind::VReg;
        o.vreg = id;
        o.vregIsSlice = is_slice;
        return o;
    }

    bool isReg() const { return kind == MOpndKind::Reg; }
    bool isSlice() const { return kind == MOpndKind::Slice; }
    bool isImm() const { return kind == MOpndKind::Imm; }
    bool isVReg() const { return kind == MOpndKind::VReg; }
};

/** Provenance tag for the Fig. 10 spill/copy accounting. */
enum class InstTag : uint8_t
{
    Normal,
    SpillLoad,   ///< Reload injected by the register allocator.
    SpillStore,  ///< Spill injected by the register allocator.
    Copy,        ///< Register-register copy (phi/copy resolution).
    Skeleton,    ///< Skeleton-block branch (misspec landing pad).
    FrameSetup,  ///< Prologue/epilogue.
};

/** One (decoded) machine instruction. */
struct MachInst
{
    MOp op = MOp::NOP;
    Cond cond = Cond::AL;
    MOpnd dst;            ///< Destination (or store data).
    MOpnd a;              ///< First source / base register.
    MOpnd b;              ///< Second source / offset.
    bool speculative = false; ///< TRN8/LDRS8: speculative variant.
    uint8_t origBits = 0;     ///< LDRS8: memory width to check.
    InstTag tag = InstTag::Normal;
    int target = -1;      ///< B/BL: symbolic target (block/function id).

    std::string str() const; ///< Disassembly.
};

/** Fixed instruction size (bytes). */
constexpr uint32_t kInstBytes = 4;

/** @name Registers */
/// @{
constexpr unsigned kRegSP = 13;
constexpr unsigned kRegLR = 14;
constexpr unsigned kRegPC = 15;
constexpr unsigned kFirstAlloc = 4; ///< r4..r11 allocatable.
constexpr unsigned kLastAlloc = 11;
constexpr unsigned kScratch0 = 0;   ///< r0..r3 scratch/args.
constexpr unsigned kScratch3 = 3;
constexpr unsigned kScratchAddr = 12;
/// @}

/** True when @p op writes flags rather than a register. */
bool writesFlags(MOp op);

/** True when @p op may misspeculate (given its speculative flag). */
bool mayMisspeculate(const MachInst &inst);

} // namespace bitspec

#endif // BITSPEC_ISA_ISA_H_
