#include "isa/encoding.h"

#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

enum class Fmt { Alu, Mov, Branch, MovW, Sys, Bare };

Fmt
formatOf(MOp op)
{
    switch (op) {
      case MOp::MOV: case MOp::MOV8: case MOp::MVN: case MOp::SETCC:
        return Fmt::Mov;
      case MOp::B: case MOp::BL:
        return Fmt::Branch;
      case MOp::MOVW: case MOp::MOVT:
        return Fmt::MovW;
      case MOp::SETDELTA: case MOp::MODE:
        return Fmt::Sys;
      case MOp::BXLR: case MOp::HALT: case MOp::NOP:
        return Fmt::Bare;
      default:
        return Fmt::Alu;
    }
}

uint32_t
encodeOpnd(const MOpnd &o)
{
    switch (o.kind) {
      case MOpndKind::None:
        return 0;
      case MOpndKind::Reg:
        return static_cast<uint32_t>(o.reg) << 2;
      case MOpndKind::Slice:
        return (1u << 6) | (static_cast<uint32_t>(o.reg) << 2) |
               o.slice;
      default:
        panic("encodeOpnd: unencodable operand kind");
    }
}

MOpnd
decodeOpnd(uint32_t bits)
{
    if (bits & (1u << 6))
        return MOpnd::makeSlice((bits >> 2) & 0xf, bits & 3);
    return MOpnd::makeReg((bits >> 2) & 0xf);
}

} // namespace

uint32_t
encodeInst(const MachInst &inst, uint32_t self_index)
{
    uint32_t op = static_cast<uint32_t>(inst.op) << 26;
    switch (formatOf(inst.op)) {
      case Fmt::Alu: {
        uint32_t spec = inst.speculative ? 1u : 0u;
        if (inst.op == MOp::LDRS8)
            spec = inst.origBits == 16 ? 1u : 0u;
        uint32_t w = op | (spec << 24) |
                     (encodeOpnd(inst.dst) << 17) |
                     (encodeOpnd(inst.a) << 10);
        if (inst.b.isImm()) {
            bsAssert(inst.b.imm >= 0 && inst.b.imm <= 1023,
                     "ALU immediate out of range: " + inst.str());
            w |= (1u << 25) | static_cast<uint32_t>(inst.b.imm);
        } else {
            w |= encodeOpnd(inst.b) << 3;
        }
        return w;
      }
      case Fmt::Mov: {
        uint32_t w = op | (static_cast<uint32_t>(inst.cond) << 22) |
                     (encodeOpnd(inst.dst) << 14);
        if (inst.a.isImm()) {
            bsAssert(inst.a.imm >= 0 && inst.a.imm <= 4095,
                     "MOV immediate out of range: " + inst.str());
            w |= (1u << 21) |
                 ((static_cast<uint32_t>(inst.a.imm) & 0xfff) << 2);
        } else if (inst.a.kind != MOpndKind::None) {
            w |= encodeOpnd(inst.a) << 7;
        }
        return w;
      }
      case Fmt::Branch: {
        int32_t rel = inst.target - static_cast<int32_t>(self_index);
        bsAssert(rel >= -(1 << 21) && rel < (1 << 21),
                 "branch offset out of range");
        return op | (static_cast<uint32_t>(inst.cond) << 22) |
               (static_cast<uint32_t>(rel) & 0x3fffff);
      }
      case Fmt::MovW: {
        bsAssert(inst.a.isImm() && inst.a.imm >= 0 &&
                 inst.a.imm <= 0xffff, "MOVW immediate out of range");
        return op | (encodeOpnd(inst.dst) << 19) |
               (static_cast<uint32_t>(inst.a.imm) & 0xffff);
      }
      case Fmt::Sys: {
        bsAssert(inst.a.isImm() && inst.a.imm >= 0 &&
                 inst.a.imm < (1 << 24), "system immediate too large");
        return op | static_cast<uint32_t>(inst.a.imm);
      }
      case Fmt::Bare:
        return op | (encodeOpnd(inst.a) << 10);
    }
    panic("encodeInst: bad format");
}

MachInst
decodeInst(uint32_t word, uint32_t self_index)
{
    MachInst inst;
    inst.op = static_cast<MOp>(word >> 26);
    switch (formatOf(inst.op)) {
      case Fmt::Alu: {
        bool immf = (word >> 25) & 1;
        bool spec = (word >> 24) & 1;
        inst.dst = decodeOpnd((word >> 17) & 0x7f);
        inst.a = decodeOpnd((word >> 10) & 0x7f);
        if (immf)
            inst.b = MOpnd::makeImm(word & 0x3ff);
        else
            inst.b = decodeOpnd((word >> 3) & 0x7f);
        if (inst.op == MOp::LDRS8) {
            inst.speculative = true;
            inst.origBits = spec ? 16 : 32;
        } else {
            inst.speculative = spec;
        }
        if (inst.op == MOp::CMP || inst.op == MOp::CMP8 ||
            inst.op == MOp::OUT) {
            inst.dst = MOpnd{};
        }
        return inst;
      }
      case Fmt::Mov: {
        inst.cond = static_cast<Cond>((word >> 22) & 0xf);
        bool immf = (word >> 21) & 1;
        inst.dst = decodeOpnd((word >> 14) & 0x7f);
        if (immf)
            inst.a = MOpnd::makeImm((word >> 2) & 0xfff);
        else if (inst.op != MOp::SETCC)
            inst.a = decodeOpnd((word >> 7) & 0x7f);
        return inst;
      }
      case Fmt::Branch: {
        inst.cond = static_cast<Cond>((word >> 22) & 0xf);
        int32_t rel = static_cast<int32_t>(word << 10) >> 10;
        inst.target = static_cast<int>(self_index) + rel;
        return inst;
      }
      case Fmt::MovW:
        inst.dst = decodeOpnd((word >> 19) & 0x7f);
        inst.a = MOpnd::makeImm(word & 0xffff);
        return inst;
      case Fmt::Sys:
        inst.a = MOpnd::makeImm(word & 0xffffff);
        return inst;
      case Fmt::Bare:
        if (inst.op == MOp::OUT)
            inst.a = decodeOpnd((word >> 10) & 0x7f);
        return inst;
    }
    panic("decodeInst: bad format");
}

std::vector<uint32_t>
encodeProgram(const std::vector<MachInst> &insts)
{
    std::vector<uint32_t> out;
    out.reserve(insts.size());
    for (uint32_t i = 0; i < insts.size(); ++i)
        out.push_back(encodeInst(insts[i], i));
    return out;
}

std::vector<MachInst>
decodeProgram(const std::vector<uint32_t> &words)
{
    std::vector<MachInst> out;
    out.reserve(words.size());
    for (uint32_t i = 0; i < words.size(); ++i)
        out.push_back(decodeInst(words[i], i));
    return out;
}

} // namespace bitspec
