/**
 * @file
 * The experiment engine: schedules (workload x SystemConfig x
 * profile_seed x run_seed) cells of a figure/table bench across a
 * thread pool and memoizes compiled Systems.
 *
 * Design rules (see DESIGN.md "Experiment engine"):
 *  - Cells are self-contained: each System owns its Module,
 *    training Interpreter and pass pipeline; Cores are constructed
 *    per run. No shared mutable statics anywhere in the pipeline.
 *  - A System is compile-once/run-many. The cache keys a compiled
 *    System by (workload name, FNV-1a of the source, canonicalized
 *    config, profile seed); all run seeds and all series of a binary
 *    that share that key reuse one instance, serialized by a per-entry
 *    run lock (System::run restores the global-data snapshot first,
 *    so runs are order-independent).
 *  - Results come back in submission order and are bit-identical to
 *    the serial path regardless of thread count.
 *  - Worker exceptions (fatal()/bsAssert/...) propagate to the caller
 *    of run(); they never abort the process.
 */

#ifndef BITSPEC_CORE_EXPERIMENT_H_
#define BITSPEC_CORE_EXPERIMENT_H_

#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/system.h"
#include "support/hash.h"
#include "support/threadpool.h"
#include "workloads/workload.h"

namespace bitspec
{

namespace artifact
{
class ArtifactStore;
}

/** One cell of an experiment matrix. */
struct ExperimentCell
{
    ExperimentCell() = default;
    ExperimentCell(const Workload *w, SystemConfig cfg,
                   uint64_t profile_seed = 0, uint64_t run_seed = 0)
        : workload(w), config(std::move(cfg)),
          profileSeed(profile_seed), runSeed(run_seed)
    {}

    /** Must outlive the ExperimentRunner::run() call. The workload's
     *  setInput must be a pure function of (module, seed). */
    const Workload *workload = nullptr;
    SystemConfig config;
    uint64_t profileSeed = 0;
    uint64_t runSeed = 0;

    /** @name Run-level knobs
     * Applied to the cached System for this cell's run only —
     * deliberately absent from the cache key (one compiled System
     * serves every engine and policy; the differential fuzzer depends
     * on that sharing). */
    /// @{
    /** Core engine override; unset = the System's default. */
    std::optional<CoreEngine> engine;
    MisspecPolicy policy = MisspecPolicy::Hardware;
    uint64_t policySeed = 0x5eed;
    /// @}
};

/** Cache / scheduling counters (bench_smoke records these). */
struct ExperimentStats
{
    uint64_t cells = 0;        ///< Cells executed.
    /** In-memory cache misses. Each one either restored a snapshot
     *  from the artifact store (diskHits) or ran a full compile. */
    uint64_t systemsBuilt = 0;
    uint64_t cacheHits = 0;    ///< Cells served by a cached System.
    /** Cache hits that blocked on a build still in flight (the
     *  shared_future was not ready when the requester arrived). */
    uint64_t inflightWaits = 0;

    /** Disk tier (all zero when no artifact store is attached). */
    uint64_t diskHits = 0;    ///< Systems restored from disk.
    uint64_t diskMisses = 0;  ///< Lookups that fell through to compile.
    uint64_t diskWrites = 0;  ///< Snapshots published after a compile.
    uint64_t diskInvalid = 0; ///< Corrupt/stale artifacts discarded.
};

/**
 * Runs experiment matrices over a worker pool with a keyed System
 * cache. run()/evaluate() may be called from several threads at once
 * (each call's results are call-local, the cache and stats are
 * mutex-guarded, and concurrent cells on one System serialize on its
 * run lock — the fuzz driver fans whole differentials out this way);
 * the same runner can execute any number of matrices, and the cache
 * persists across them (clearCache() drops it).
 */
class ExperimentRunner
{
  public:
    /** @param threads Worker count; 0 = BITSPEC_JOBS env override or
     *  hardware concurrency (ThreadPool::defaultThreadCount). */
    explicit ExperimentRunner(unsigned threads = 0);
    ~ExperimentRunner();

    /**
     * Execute every cell, in parallel, returning results in
     * submission order. Throws the first failing cell's exception
     * (after all cells finished or failed).
     */
    std::vector<RunResult> run(const std::vector<ExperimentCell> &cells);

    /** One-cell convenience; still goes through the System cache. */
    RunResult evaluate(const Workload &w, const SystemConfig &config,
                       uint64_t profile_seed = 0, uint64_t run_seed = 0);

    /**
     * Build (or fetch) the cell's System and run @p fn on it under
     * its run lock. Lets a caller reuse the System's squeezed module
     * directly — the differential fuzzer interprets it IR-level
     * instead of re-running the whole squeeze pipeline a second
     * time. @p fn may mutate global data (System::run restores the
     * snapshot before every machine run) but must not restructure
     * the module. Beware: a System restored from the disk artifact
     * tier carries globals only, no IR — check module().getFunction
     * before interpreting.
     */
    void withSystem(const Workload &w, const SystemConfig &config,
                    uint64_t profile_seed,
                    const std::function<void(System &)> &fn);

    unsigned threadCount() const { return pool_.threadCount(); }
    ExperimentStats stats() const;
    void clearCache();

    /**
     * Attach an on-disk artifact store (second cache tier): getOrBuild
     * consults it before compiling and publishes after. The
     * constructor already wires one up from BITSPEC_ARTIFACT_DIR /
     * BITSPEC_ARTIFACT_MAX_MB; this override is for tests and benches
     * that manage their own directory. Call before the first run.
     */
    void enableArtifactStore(const std::string &dir,
                             uint64_t max_bytes);

    /** The attached store, or nullptr when the disk tier is off. */
    const artifact::ArtifactStore *artifactStore() const;

    /**
     * Canonical cache key of a cell's compiled System: workload name,
     * FNV-1a hash of the source text, every SystemConfig field (in
     * declaration order, doubles at full precision), the profile
     * seed, and the build flavour (git describe + build type +
     * snapshot schema hash — see artifact::buildFlavour). Run seeds
     * are deliberately absent.
     */
    static std::string systemKey(const Workload &w,
                                 const SystemConfig &config,
                                 uint64_t profile_seed);

    /** 128-bit content hash of the same fields, computed without
     *  building the key string (the hot getOrBuild path); also the
     *  artifact store's file name. Equal canonical keys <=> equal
     *  hashes (module a 2^-128 collision, which the store's embedded
     *  key string additionally guards against). */
    static Hash128 systemKeyHash(const Workload &w,
                                 const SystemConfig &config,
                                 uint64_t profile_seed);

    /**
     * Canonical *flavour-free* identity of a cell for the run ledger
     * (obs/ledger.h): the systemKey fields minus the build flavour,
     * plus the run-level knobs (run seed, engine, policy, policy
     * seed). Excluding the flavour is the point — bitspec-diff joins
     * ledgers from two different commits on this key, which is
     * exactly what the full systemKey is designed to prevent for the
     * artifact cache.
     */
    static std::string cellKey(const ExperimentCell &cell);

  private:
    /** A cached System plus the lock serializing run() on it. */
    struct CachedSystem
    {
        System sys;
        std::mutex runMu;
        /** How this instance came to exist: "compile" or "disk".
         *  Requesters that find it already cached report "memory" in
         *  their ledger records instead. */
        const char *origin = "compile";

        CachedSystem(const Workload &w, const SystemConfig &config,
                     uint64_t profile_seed)
            : sys(w.source, config, [&w, profile_seed](Module &m) {
                  w.setInput(m, profile_seed);
              })
        {}

        /** Warm start from a disk artifact. */
        CachedSystem(const artifact::SystemSnapshot &snap,
                     const SystemConfig &config)
            : sys(snap, config), origin("disk")
        {}
    };

    /** @p origin (optional) receives this call's cache provenance:
     *  the built System's origin when this call compiled/restored it,
     *  "memory" when an already-cached instance served it. */
    std::shared_ptr<CachedSystem> getOrBuild(const Workload &w,
                                             const SystemConfig &config,
                                             uint64_t profile_seed,
                                             const char **origin = nullptr);
    RunResult runCell(const ExperimentCell &cell);

    ThreadPool pool_;
    mutable std::mutex cacheMu_;
    /** Value is a shared_future so concurrent requesters of the same
     *  key block on one build instead of compiling twice. Keyed by
     *  the 128-bit content hash — no string building per lookup. */
    std::unordered_map<Hash128,
                       std::shared_future<std::shared_ptr<CachedSystem>>,
                       Hash128Hasher>
        cache_;
    /** Disk tier; nullptr when disabled (the default). */
    std::unique_ptr<artifact::ArtifactStore> store_;
    ExperimentStats stats_;
};

} // namespace bitspec

#endif // BITSPEC_CORE_EXPERIMENT_H_
