/**
 * @file
 * End-to-end BitSpec system facade: source -> expander -> profiler ->
 * squeezer -> backend -> core model -> energy, mirroring the paper's
 * experiment configurations (§A.7): architecture (baseline/bitspec),
 * compiler (baseline / bitwidth_speculation / no-speculation),
 * middle-end heuristic (2cfg-{max,avg,min}), expander on/off, and
 * DTS voltage scaling.
 */

#ifndef BITSPEC_CORE_SYSTEM_H_
#define BITSPEC_CORE_SYSTEM_H_

#include <functional>
#include <memory>
#include <string>

#include "artifact/snapshot.h"
#include "backend/compiler.h"
#include "energy/dts.h"
#include "energy/model.h"
#include "interp/interpreter.h"
#include "transform/expander.h"
#include "transform/squeezer.h"
#include "uarch/core.h"
#include "uarch/fast_core.h"
#include "uarch/predecode.h"

namespace bitspec
{

class BlockProfilerSink;
class CounterTrackEmitter;

/** Which uarch execution engine System::run drives. Both produce
 *  bit-identical observables (ctest-enforced by
 *  tests/uarch/core_engine_diff_test.cc); Fast is an order of
 *  magnitude quicker on the no-miss hot path. Selected by the
 *  BITSPEC_CORE_ENGINE env knob ("fast" default, "legacy"), or
 *  programmatically via System::setCoreEngine. */
enum class CoreEngine
{
    Legacy, ///< Cycle-accurate reference Core (the oracle).
    Fast,   ///< Pre-decoded, block-memoized FastCore.
};

/** Observers a run attaches to the core; all optional, all must
 *  outlive the run. When `tracks` is null but BITSPEC_TRACE is
 *  active, System attaches a transient CounterTrackEmitter so every
 *  traced run gets IPC / misspec-rate / cache-hit counter tracks for
 *  free. */
struct RunObservers
{
    AttributionSink *attribution = nullptr;
    BlockProfilerSink *blocks = nullptr;
    CounterTrackEmitter *tracks = nullptr;
};

/** One experiment configuration (paper §A.7 YAML equivalent). */
struct SystemConfig
{
    /** Architecture / ISA. */
    TargetISA isa = TargetISA::BitSpec;
    /** Apply the squeezer at all (false = baseline compiler). */
    bool squeeze = true;
    /** Squeezer options (speculate=false is the RQ2 variant). */
    SqueezeOptions squeezeOpts;
    /** Expander options (enabled=false is the RQ4 ablation). */
    ExpanderOptions expander;
    /** Apply the DTS voltage-scaling model (RQ8). */
    bool dts = false;
    DtsParams dtsParams;
    /** Energy model parameters. */
    EnergyParams energy;

    /** Canonical configurations. */
    static SystemConfig baseline();
    static SystemConfig bitspec(Heuristic h = Heuristic::Max);
    static SystemConfig noSpeculation();
    static SystemConfig dtsOnly();
    static SystemConfig dtsPlusBitspec(Heuristic h = Heuristic::Max);
};

/** All measurements from one compiled-and-simulated run. */
struct RunResult
{
    uint32_t returnValue = 0;
    uint64_t outputChecksum = 0;

    ActivityCounters counters;
    CacheStats l1i, l1d, l2;
    DramStats dram;

    EnergyBreakdown energy;
    double totalEnergy = 0;   ///< pJ; DTS-scaled when dts is on.
    double epi = 0;           ///< pJ per instruction.
    double meanVoltage = 0;   ///< Volts (1.2 without DTS).

    SqueezeStats squeezeStats;
    ExpandStats expandStats;
    BackendStats backendStats;
};

/** A compiled system instance, reusable across inputs. */
class System
{
  public:
    /**
     * Build from C-subset source. @p train_input (optional) mutates
     * module globals before the profiling run; profiling executes
     * "main" with @p train_args.
     */
    System(const std::string &source, const SystemConfig &config,
           const std::function<void(Module &)> &train_input = {},
           const std::vector<uint64_t> &train_args = {});

    /**
     * Warm-start from an artifact-store snapshot: no frontend,
     * profiling, squeeze or codegen — the linked program, stats and
     * post-profiling global images come straight from @p snap.
     * @p config must be the configuration the snapshot was compiled
     * under (the store's content-addressed key guarantees this).
     *
     * The restored Module carries globals only (run inputs mutate
     * globals by name; nothing downstream of the backend reads IR
     * functions), so run()s are bit-identical to a fresh compile —
     * ctest-enforced by tests/artifact/artifact_diff_test.cc — but
     * the training interpreter is not available.
     */
    System(const artifact::SystemSnapshot &snap,
           const SystemConfig &config);

    /** Capture this System for the artifact store. @p key is the
     *  canonical systemKey embedded for collision detection. Uses the
     *  pristine post-profiling global snapshot, so capturing after
     *  run()s is safe. */
    artifact::SystemSnapshot makeSnapshot(const std::string &key) const;

    /**
     * Run with fresh input: global data is first restored to its
     * post-profiling snapshot (so runs are independent — required for
     * the experiment engine's compile-once/run-many reuse), then
     * @p run_input mutates globals and the core executes from _start.
     */
    RunResult run(const std::function<void(Module &)> &run_input = {},
                  const std::vector<uint32_t> &args = {});

    /** As above, with a misspeculation-attribution recorder attached
     *  to the core for this run (nullptr = no attribution). */
    RunResult run(const std::function<void(Module &)> &run_input,
                  const std::vector<uint32_t> &args,
                  AttributionSink *attr);

    /** As above, with any combination of observers attached to the
     *  core for this run. */
    RunResult run(const std::function<void(Module &)> &run_input,
                  const std::vector<uint32_t> &args,
                  const RunObservers &observers);

    Module &module() { return *module_; }
    const MachProgram &program() const { return compiled_.program; }
    const SystemConfig &config() const { return config_; }
    const SqueezeStats &squeezeStats() const { return squeezeStats_; }

    /** Override the BITSPEC_CORE_ENGINE selection for later runs.
     *  Switching drops the cached fast-engine state (pre-decode table
     *  and block memos are rebuilt lazily on the next fast run). */
    void setCoreEngine(CoreEngine engine);
    CoreEngine coreEngine() const { return engine_; }

    /** Misspeculation policy applied to the core on every later run
     *  (see Core::setMisspecPolicy). Each run re-seeds the core's RNG
     *  with @p seed, so Random runs are independent of run ordering.
     *  Machine cores only; the training interpreter always trains
     *  under Hardware semantics. */
    void
    setMisspecPolicy(MisspecPolicy p, uint64_t seed = 0x5eed)
    {
        misspecPolicy_ = p;
        misspecSeed_ = seed;
    }
    MisspecPolicy misspecPolicy() const { return misspecPolicy_; }

    /** The persistent fast engine, or nullptr before the first fast
     *  run (observability/tests: memo counts, replay stats). */
    const FastCore *fastCore() const { return fastCore_.get(); }

    /** Dynamic IR instructions of the training run (Fig. 3's
     *  IR-level series). */
    uint64_t profiledIrInstructions() const { return trainIrSteps_; }

  private:
    SystemConfig config_;
    std::unique_ptr<Module> module_;
    /** Interpreter used for the training run; invalidated whenever a
     *  transform mutates the module (see Interpreter::invalidate). */
    std::unique_ptr<Interpreter> trainInterp_;
    CompiledProgram compiled_;
    SqueezeStats squeezeStats_;
    ExpandStats expandStats_;
    uint64_t trainIrSteps_ = 0;
    CoreEngine engine_ = CoreEngine::Fast;
    MisspecPolicy misspecPolicy_ = MisspecPolicy::Hardware;
    uint64_t misspecSeed_ = 0x5eed;
    /** Fast-engine state, built lazily on the first fast run and
     *  reused across runs: the pre-decode table is immutable, and the
     *  FastCore's block memos depend only on it — the compiled
     *  program never changes after construction. Any future
     *  re-squeeze/re-link of compiled_ must reset these (see
     *  FastCore::invalidateMemos). */
    std::unique_ptr<PredecodedProgram> predecoded_;
    std::unique_ptr<FastCore> fastCore_;
    /** Global byte images captured at the end of construction;
     *  restored before every run so run N cannot leak state (e.g.
     *  longer previous inputs) into run N+1. */
    std::vector<std::pair<Global *, std::vector<uint8_t>>>
        globalSnapshot_;
};

} // namespace bitspec

#endif // BITSPEC_CORE_SYSTEM_H_
