#include "core/experiment.h"

#include <chrono>
#include <cstring>
#include <exception>

#include "artifact/store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * The canonical key and its 128-bit hash are two renderings of the
 * same field sequence, kept in lockstep by folding through a sink:
 * StringKeySink builds the readable key (artifact payloads embed it
 * for collision detection), HashKeySink digests the identical fields
 * without any heap allocation — the rendering getOrBuild uses per
 * lookup.
 */
struct StringKeySink
{
    std::string key;

    void text(const std::string &s) { key += s; }

    void
    field(const char *name, double v)
    {
        key += strFormat(";%s=%.17g", name, v);
    }

    void
    field(const char *name, uint64_t v)
    {
        key += strFormat(";%s=%llu", name,
                         static_cast<unsigned long long>(v));
    }

    void
    field(const char *name, bool v)
    {
        key += strFormat(";%s=%d", name, v ? 1 : 0);
    }

    void
    field(const char *name, const std::string &v)
    {
        key += strFormat(";%s=%s", name, v.c_str());
    }
};

struct HashKeySink
{
    Hash128Builder h;

    void
    text(const std::string &s)
    {
        h.updateU64(s.size());
        h.update(s);
    }

    void
    name(const char *n)
    {
        h.update(n, std::strlen(n) + 1); // NUL delimits field names.
    }

    void
    field(const char *n, double v)
    {
        name(n);
        h.updateDouble(v); // Bit pattern <=> %.17g round-trip.
    }

    void
    field(const char *n, uint64_t v)
    {
        name(n);
        h.updateU64(v);
    }

    void
    field(const char *n, bool v)
    {
        name(n);
        h.updateU64(v ? 1 : 0);
    }

    void
    field(const char *n, const std::string &v)
    {
        name(n);
        text(v);
    }
};

template <typename Sink>
void
foldSystemKey(Sink &s, const Workload &w, const SystemConfig &c,
              uint64_t profile_seed)
{
    auto appendField = [&s](const char *n, auto v) { s.field(n, v); };
    s.text(w.name);
    appendField("src", fnv1a(w.source));
    appendField("isa", static_cast<uint64_t>(c.isa));
    appendField("squeeze", c.squeeze);
    appendField("heuristic",
                static_cast<uint64_t>(c.squeezeOpts.heuristic));
    appendField("speculate", c.squeezeOpts.speculate);
    appendField("cmpElim", c.squeezeOpts.compareElimination);
    appendField("bitmask", c.squeezeOpts.bitmaskElision);
    appendField("staticKb", c.squeezeOpts.staticAnalysis);
    appendField("unroll",
                static_cast<uint64_t>(c.expander.unrollFactor));
    appendField("maxFn",
                static_cast<uint64_t>(c.expander.maxFunctionSize));
    appendField("maxLoop",
                static_cast<uint64_t>(c.expander.maxLoopSize));
    appendField("expand", c.expander.enabled);
    appendField("dts", c.dts);
    appendField("vNom", c.dtsParams.vNominal);
    appendField("vTh", c.dtsParams.vThreshold);
    appendField("alpha", c.dtsParams.alpha);
    appendField("vMin", c.dtsParams.vMin);
    appendField("fLogic", c.dtsParams.fracLogic);
    appendField("fAddSub", c.dtsParams.fracAddSub);
    appendField("fMulDiv", c.dtsParams.fracMulDiv);
    appendField("fMem", c.dtsParams.fracMem);
    appendField("fBranch", c.dtsParams.fracBranch);
    appendField("widthAware", c.dtsParams.widthAware);
    appendField("fAddSub8", c.dtsParams.fracAddSub8);
    appendField("fLogic8", c.dtsParams.fracLogic8);
    appendField("errRate", c.dtsParams.errorRate);
    appendField("recE", c.dtsParams.recoveryEnergy);
    appendField("eAlu32", c.energy.alu32);
    appendField("eAlu8", c.energy.alu8);
    appendField("eMulDiv", c.energy.mulDiv);
    appendField("eRfR32", c.energy.rfRead32);
    appendField("eRfW32", c.energy.rfWrite32);
    appendField("eRfR8", c.energy.rfRead8);
    appendField("eRfW8", c.energy.rfWrite8);
    appendField("eIc", c.energy.icacheAccess);
    appendField("eDc", c.energy.dcacheAccess);
    appendField("eL2", c.energy.l2Access);
    appendField("eDram", c.energy.dramAccess);
    appendField("ePipe", c.energy.pipelinePerCycle);
    appendField("eMisspec", c.energy.misspecRecovery);
    appendField("pseed", profile_seed);
    appendField("flavour", artifact::buildFlavour());
}

} // namespace

std::string
ExperimentRunner::systemKey(const Workload &w, const SystemConfig &c,
                            uint64_t profile_seed)
{
    StringKeySink s;
    foldSystemKey(s, w, c, profile_seed);
    return s.key;
}

Hash128
ExperimentRunner::systemKeyHash(const Workload &w,
                                const SystemConfig &c,
                                uint64_t profile_seed)
{
    HashKeySink s;
    foldSystemKey(s, w, c, profile_seed);
    return s.h.digest();
}

ExperimentRunner::ExperimentRunner(unsigned threads)
    : pool_(threads), store_(artifact::ArtifactStore::fromEnv())
{}

ExperimentRunner::~ExperimentRunner() = default;

void
ExperimentRunner::enableArtifactStore(const std::string &dir,
                                      uint64_t max_bytes)
{
    store_ =
        std::make_unique<artifact::ArtifactStore>(dir, max_bytes);
}

const artifact::ArtifactStore *
ExperimentRunner::artifactStore() const
{
    return store_.get();
}

std::shared_ptr<ExperimentRunner::CachedSystem>
ExperimentRunner::getOrBuild(const Workload &w,
                             const SystemConfig &config,
                             uint64_t profile_seed)
{
    const Hash128 key = systemKeyHash(w, config, profile_seed);

    std::promise<std::shared_ptr<CachedSystem>> promise;
    std::shared_future<std::shared_ptr<CachedSystem>> fut;
    bool builder = false;
    bool inflight = false;
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            fut = promise.get_future().share();
            cache_.emplace(key, fut);
            builder = true;
            ++stats_.systemsBuilt;
        } else {
            fut = it->second;
            ++stats_.cacheHits;
            inflight = fut.wait_for(std::chrono::seconds(0)) !=
                       std::future_status::ready;
            if (inflight)
                ++stats_.inflightWaits;
        }
    }

    MetricsRegistry &reg = MetricsRegistry::global();
    if (builder) {
        reg.counter("experiment.cache.misses", {{"workload", w.name}})
            .add();
        trace::instant("cache.miss", "experiment",
                       {{"workload", w.name}});
        try {
            std::shared_ptr<CachedSystem> sys;
            std::string canonical;
            if (store_) {
                canonical = systemKey(w, config, profile_seed);
                if (auto snap = store_->load(key, canonical)) {
                    sys = std::make_shared<CachedSystem>(*snap, config);
                    reg.counter("experiment.disk.hits",
                                {{"workload", w.name}})
                        .add();
                    trace::instant("disk.hit", "experiment",
                                   {{"workload", w.name}});
                } else {
                    reg.counter("experiment.disk.misses",
                                {{"workload", w.name}})
                        .add();
                }
            }
            if (!sys) {
                sys = std::make_shared<CachedSystem>(w, config,
                                                     profile_seed);
                // Absorb the build's squeezer stats once per real
                // compile (runs reusing this System — and disk-tier
                // restores — do not re-count them).
                const SqueezeStats &sq = sys->sys.squeezeStats();
                MetricsRegistry::Labels wl = {{"workload", w.name}};
                reg.counter("squeeze.narrowed", wl).add(sq.narrowed);
                reg.counter("squeeze.regions", wl).add(sq.regions);
                reg.counter("squeeze.checks_dropped", wl)
                    .add(sq.checksDropped);
                reg.counter("lint.proven_safe", wl)
                    .add(sq.lintProvenSafe);
                reg.counter("lint.proven_unsafe", wl)
                    .add(sq.lintProvenUnsafe);
                if (store_)
                    store_->publish(key,
                                    sys->sys.makeSnapshot(canonical));
            }
            promise.set_value(std::move(sys));
        } catch (...) {
            // Every cell sharing this key sees the build failure.
            promise.set_exception(std::current_exception());
        }
    } else {
        reg.counter("experiment.cache.hits", {{"workload", w.name}})
            .add();
        if (inflight)
            reg.counter("experiment.cache.inflight_waits",
                        {{"workload", w.name}})
                .add();
        trace::instant("cache.hit", "experiment",
                       {{"workload", w.name},
                        {"inflight", inflight ? "1" : "0"}});
    }
    return fut.get();
}

RunResult
ExperimentRunner::runCell(const ExperimentCell &cell)
{
    bsAssert(cell.workload != nullptr, "experiment cell w/o workload");
    // Worker threads are owned by the support-layer pool, which cannot
    // depend on obs; name their trace lanes on first use instead.
    trace::nameThisThread("worker");
    trace::Span span("experiment.cell", "experiment");
    span.arg("workload", cell.workload->name);
    span.arg("squeeze", cell.config.squeeze ? "1" : "0");
    span.arg("run_seed", std::to_string(cell.runSeed));
    if (cell.policy != MisspecPolicy::Hardware)
        span.arg("policy", misspecPolicyName(cell.policy));
    std::shared_ptr<CachedSystem> cached =
        getOrBuild(*cell.workload, cell.config, cell.profileSeed);
    const Workload &w = *cell.workload;
    uint64_t run_seed = cell.runSeed;
    RunResult out;
    {
        std::lock_guard<std::mutex> lock(cached->runMu);
        // Run-level knobs. The policy is set for every cell (a plain
        // cell must undo a predecessor's override on the shared
        // System); the engine sticks, so mixed-engine matrices must
        // set it on every cell.
        if (cell.engine)
            cached->sys.setCoreEngine(*cell.engine);
        cached->sys.setMisspecPolicy(cell.policy, cell.policySeed);
        out = cached->sys.run(
            [&w, run_seed](Module &m) { w.setInput(m, run_seed); });
    }

    MetricsRegistry &reg = MetricsRegistry::global();
    MetricsRegistry::Labels wl = {{"workload", w.name}};
    reg.counter("run.cells", wl).add();
    reg.counter("run.instructions", wl).add(out.counters.instructions);
    reg.counter("run.cycles", wl).add(out.counters.cycles);
    reg.counter("run.misspeculations", wl)
        .add(out.counters.misspeculations);
    reg.histogram("run.energy_pj", wl).record(out.totalEnergy);
    reg.histogram("run.epi_pj", wl).record(out.epi);
    return out;
}

std::vector<RunResult>
ExperimentRunner::run(const std::vector<ExperimentCell> &cells)
{
    std::vector<RunResult> results(cells.size());
    std::vector<std::future<void>> futs;
    futs.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        futs.push_back(pool_.submit([this, &cells, &results, i] {
            results[i] = runCell(cells[i]);
        }));
    }

    // Drain every future before unwinding: tasks reference the local
    // results vector, so no early rethrow. Report the first failure
    // (submission order), matching what the serial loop would throw.
    std::exception_ptr first;
    for (auto &f : futs) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        stats_.cells += cells.size();
    }
    if (first)
        std::rethrow_exception(first);
    return results;
}

RunResult
ExperimentRunner::evaluate(const Workload &w, const SystemConfig &config,
                           uint64_t profile_seed, uint64_t run_seed)
{
    ExperimentCell cell;
    cell.workload = &w;
    cell.config = config;
    cell.profileSeed = profile_seed;
    cell.runSeed = run_seed;
    RunResult out = runCell(cell);
    std::lock_guard<std::mutex> lock(cacheMu_);
    ++stats_.cells;
    return out;
}

void
ExperimentRunner::withSystem(const Workload &w,
                             const SystemConfig &config,
                             uint64_t profile_seed,
                             const std::function<void(System &)> &fn)
{
    std::shared_ptr<CachedSystem> cached =
        getOrBuild(w, config, profile_seed);
    std::lock_guard<std::mutex> lock(cached->runMu);
    fn(cached->sys);
}

ExperimentStats
ExperimentRunner::stats() const
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    ExperimentStats out = stats_;
    if (store_) {
        const artifact::StoreStats ds = store_->stats();
        out.diskHits = ds.hits;
        out.diskMisses = ds.misses;
        out.diskWrites = ds.writes;
        out.diskInvalid = ds.invalid;
    }
    return out;
}

void
ExperimentRunner::clearCache()
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    cache_.clear();
}

} // namespace bitspec
