#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <errno.h> // program_invocation_short_name (glibc).
#include <exception>
#include <optional>

#include "artifact/store.h"
#include "obs/attribution.h"
#include "obs/flightrec.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/log.h"
#include "support/stats.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * The canonical key and its 128-bit hash are two renderings of the
 * same field sequence, kept in lockstep by folding through a sink:
 * StringKeySink builds the readable key (artifact payloads embed it
 * for collision detection), HashKeySink digests the identical fields
 * without any heap allocation — the rendering getOrBuild uses per
 * lookup.
 */
struct StringKeySink
{
    std::string key;

    void text(const std::string &s) { key += s; }

    void
    field(const char *name, double v)
    {
        key += strFormat(";%s=%.17g", name, v);
    }

    void
    field(const char *name, uint64_t v)
    {
        key += strFormat(";%s=%llu", name,
                         static_cast<unsigned long long>(v));
    }

    void
    field(const char *name, bool v)
    {
        key += strFormat(";%s=%d", name, v ? 1 : 0);
    }

    void
    field(const char *name, const std::string &v)
    {
        key += strFormat(";%s=%s", name, v.c_str());
    }
};

struct HashKeySink
{
    Hash128Builder h;

    void
    text(const std::string &s)
    {
        h.updateU64(s.size());
        h.update(s);
    }

    void
    name(const char *n)
    {
        h.update(n, std::strlen(n) + 1); // NUL delimits field names.
    }

    void
    field(const char *n, double v)
    {
        name(n);
        h.updateDouble(v); // Bit pattern <=> %.17g round-trip.
    }

    void
    field(const char *n, uint64_t v)
    {
        name(n);
        h.updateU64(v);
    }

    void
    field(const char *n, bool v)
    {
        name(n);
        h.updateU64(v ? 1 : 0);
    }

    void
    field(const char *n, const std::string &v)
    {
        name(n);
        text(v);
    }
};

/** @p include_flavour distinguishes the two key uses: the cache /
 *  artifact key embeds the build flavour (a snapshot must never
 *  outlive its producing binary), while the ledger's cell key omits
 *  it so records from different commits stay joinable. */
template <typename Sink>
void
foldSystemKey(Sink &s, const Workload &w, const SystemConfig &c,
              uint64_t profile_seed, bool include_flavour = true)
{
    auto appendField = [&s](const char *n, auto v) { s.field(n, v); };
    s.text(w.name);
    appendField("src", fnv1a(w.source));
    appendField("isa", static_cast<uint64_t>(c.isa));
    appendField("squeeze", c.squeeze);
    appendField("heuristic",
                static_cast<uint64_t>(c.squeezeOpts.heuristic));
    appendField("speculate", c.squeezeOpts.speculate);
    appendField("cmpElim", c.squeezeOpts.compareElimination);
    appendField("bitmask", c.squeezeOpts.bitmaskElision);
    appendField("staticKb", c.squeezeOpts.staticAnalysis);
    appendField("unroll",
                static_cast<uint64_t>(c.expander.unrollFactor));
    appendField("maxFn",
                static_cast<uint64_t>(c.expander.maxFunctionSize));
    appendField("maxLoop",
                static_cast<uint64_t>(c.expander.maxLoopSize));
    appendField("expand", c.expander.enabled);
    appendField("dts", c.dts);
    appendField("vNom", c.dtsParams.vNominal);
    appendField("vTh", c.dtsParams.vThreshold);
    appendField("alpha", c.dtsParams.alpha);
    appendField("vMin", c.dtsParams.vMin);
    appendField("fLogic", c.dtsParams.fracLogic);
    appendField("fAddSub", c.dtsParams.fracAddSub);
    appendField("fMulDiv", c.dtsParams.fracMulDiv);
    appendField("fMem", c.dtsParams.fracMem);
    appendField("fBranch", c.dtsParams.fracBranch);
    appendField("widthAware", c.dtsParams.widthAware);
    appendField("fAddSub8", c.dtsParams.fracAddSub8);
    appendField("fLogic8", c.dtsParams.fracLogic8);
    appendField("errRate", c.dtsParams.errorRate);
    appendField("recE", c.dtsParams.recoveryEnergy);
    appendField("eAlu32", c.energy.alu32);
    appendField("eAlu8", c.energy.alu8);
    appendField("eMulDiv", c.energy.mulDiv);
    appendField("eRfR32", c.energy.rfRead32);
    appendField("eRfW32", c.energy.rfWrite32);
    appendField("eRfR8", c.energy.rfRead8);
    appendField("eRfW8", c.energy.rfWrite8);
    appendField("eIc", c.energy.icacheAccess);
    appendField("eDc", c.energy.dcacheAccess);
    appendField("eL2", c.energy.l2Access);
    appendField("eDram", c.energy.dramAccess);
    appendField("ePipe", c.energy.pipelinePerCycle);
    appendField("eMisspec", c.energy.misspecRecovery);
    appendField("pseed", profile_seed);
    if (include_flavour)
        appendField("flavour", artifact::buildFlavour());
}

const char *
coreEngineName(CoreEngine e)
{
    return e == CoreEngine::Fast ? "fast" : "legacy";
}

} // namespace

std::string
ExperimentRunner::systemKey(const Workload &w, const SystemConfig &c,
                            uint64_t profile_seed)
{
    StringKeySink s;
    foldSystemKey(s, w, c, profile_seed);
    return s.key;
}

Hash128
ExperimentRunner::systemKeyHash(const Workload &w,
                                const SystemConfig &c,
                                uint64_t profile_seed)
{
    HashKeySink s;
    foldSystemKey(s, w, c, profile_seed);
    return s.h.digest();
}

std::string
ExperimentRunner::cellKey(const ExperimentCell &cell)
{
    bsAssert(cell.workload != nullptr, "cellKey on empty cell");
    StringKeySink s;
    foldSystemKey(s, *cell.workload, cell.config, cell.profileSeed,
                  /*include_flavour=*/false);
    s.field("rseed", cell.runSeed);
    // "default" (not the resolved engine) when unset: the resolution
    // depends on the BITSPEC_CORE_ENGINE knob, which is provenance
    // the ledger records separately — the key must stay a pure
    // function of the cell.
    s.field("engine", std::string(cell.engine
                                      ? coreEngineName(*cell.engine)
                                      : "default"));
    s.field("policy", std::string(misspecPolicyName(cell.policy)));
    s.field("polseed", cell.policySeed);
    return s.key;
}

ExperimentRunner::ExperimentRunner(unsigned threads)
    : pool_(threads), store_(artifact::ArtifactStore::fromEnv())
{}

ExperimentRunner::~ExperimentRunner() = default;

void
ExperimentRunner::enableArtifactStore(const std::string &dir,
                                      uint64_t max_bytes)
{
    store_ =
        std::make_unique<artifact::ArtifactStore>(dir, max_bytes);
}

const artifact::ArtifactStore *
ExperimentRunner::artifactStore() const
{
    return store_.get();
}

std::shared_ptr<ExperimentRunner::CachedSystem>
ExperimentRunner::getOrBuild(const Workload &w,
                             const SystemConfig &config,
                             uint64_t profile_seed,
                             const char **origin)
{
    const Hash128 key = systemKeyHash(w, config, profile_seed);

    std::promise<std::shared_ptr<CachedSystem>> promise;
    std::shared_future<std::shared_ptr<CachedSystem>> fut;
    bool builder = false;
    bool inflight = false;
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            fut = promise.get_future().share();
            cache_.emplace(key, fut);
            builder = true;
            ++stats_.systemsBuilt;
        } else {
            fut = it->second;
            ++stats_.cacheHits;
            inflight = fut.wait_for(std::chrono::seconds(0)) !=
                       std::future_status::ready;
            if (inflight)
                ++stats_.inflightWaits;
        }
    }

    MetricsRegistry &reg = MetricsRegistry::global();
    if (builder) {
        reg.counter("experiment.cache.misses", {{"workload", w.name}})
            .add();
        trace::instant("cache.miss", "experiment",
                       {{"workload", w.name}});
        try {
            std::shared_ptr<CachedSystem> sys;
            std::string canonical;
            if (store_) {
                canonical = systemKey(w, config, profile_seed);
                if (auto snap = store_->load(key, canonical)) {
                    sys = std::make_shared<CachedSystem>(*snap, config);
                    reg.counter("experiment.disk.hits",
                                {{"workload", w.name}})
                        .add();
                    trace::instant("disk.hit", "experiment",
                                   {{"workload", w.name}});
                } else {
                    reg.counter("experiment.disk.misses",
                                {{"workload", w.name}})
                        .add();
                }
            }
            if (!sys) {
                sys = std::make_shared<CachedSystem>(w, config,
                                                     profile_seed);
                // Absorb the build's squeezer stats once per real
                // compile (runs reusing this System — and disk-tier
                // restores — do not re-count them).
                const SqueezeStats &sq = sys->sys.squeezeStats();
                MetricsRegistry::Labels wl = {{"workload", w.name}};
                reg.counter("squeeze.narrowed", wl).add(sq.narrowed);
                reg.counter("squeeze.regions", wl).add(sq.regions);
                reg.counter("squeeze.checks_dropped", wl)
                    .add(sq.checksDropped);
                reg.counter("lint.proven_safe", wl)
                    .add(sq.lintProvenSafe);
                reg.counter("lint.proven_unsafe", wl)
                    .add(sq.lintProvenUnsafe);
                if (store_)
                    store_->publish(key,
                                    sys->sys.makeSnapshot(canonical));
            }
            promise.set_value(std::move(sys));
        } catch (...) {
            // Every cell sharing this key sees the build failure.
            promise.set_exception(std::current_exception());
        }
    } else {
        reg.counter("experiment.cache.hits", {{"workload", w.name}})
            .add();
        if (inflight)
            reg.counter("experiment.cache.inflight_waits",
                        {{"workload", w.name}})
                .add();
        trace::instant("cache.hit", "experiment",
                       {{"workload", w.name},
                        {"inflight", inflight ? "1" : "0"}});
    }
    std::shared_ptr<CachedSystem> cached = fut.get();
    if (origin)
        *origin = builder ? cached->origin : "memory";
    return cached;
}

RunResult
ExperimentRunner::runCell(const ExperimentCell &cell)
{
    bsAssert(cell.workload != nullptr, "experiment cell w/o workload");
    // Worker threads are owned by the support-layer pool, which cannot
    // depend on obs; name their trace lanes on first use instead.
    trace::nameThisThread("worker");
    trace::Span span("experiment.cell", "experiment");
    span.arg("workload", cell.workload->name);
    span.arg("squeeze", cell.config.squeeze ? "1" : "0");
    span.arg("run_seed", std::to_string(cell.runSeed));
    if (cell.policy != MisspecPolicy::Hardware)
        span.arg("policy", misspecPolicyName(cell.policy));
    const char *origin = "memory";
    std::shared_ptr<CachedSystem> cached = getOrBuild(
        *cell.workload, cell.config, cell.profileSeed, &origin);
    const Workload &w = *cell.workload;
    uint64_t run_seed = cell.runSeed;

    LedgerWriter *ledger = LedgerWriter::global();
    // Detail capture attaches attribution + heat sinks, which forces
    // the core off the FastCore replay path — the default ledger
    // record is deliberately cheap (BITSPEC_LEDGER alone must stay
    // within bench_smoke's 1% overhead gate).
    const bool detail = ledger && LedgerWriter::detailEnabled();
    LedgerRecord rec;
    uint64_t log_errors0 = 0, log_warns0 = 0;
    if (ledger) {
        rec.flavour = artifact::buildFlavour();
        rec.bench = program_invocation_short_name;
        rec.workload = w.name;
        rec.cellKey = cellKey(cell);
        rec.systemKey = systemKey(w, cell.config, cell.profileSeed);
        rec.artifactKey =
            systemKeyHash(w, cell.config, cell.profileSeed).hex();
        rec.cacheSource = origin;
        rec.policy = misspecPolicyName(cell.policy);
        rec.profileSeed = cell.profileSeed;
        rec.runSeed = cell.runSeed;
        rec.policySeed = cell.policySeed;
        rec.env = captureBitspecEnv();
        log_errors0 = log::count(log::Level::Error);
        log_warns0 = log::count(log::Level::Warn);
        // Provenance-only snapshot for the flight recorder: if this
        // run dies, the post-mortem names the cell that was in
        // flight.
        if (flightrec::active())
            flightrec::setInflight(toJsonLine(rec).c_str());
    }

    std::optional<AttributionMap> amap;
    std::optional<BlockMap> bmap;
    std::optional<AttributionSink> asink;
    std::optional<BlockProfilerSink> bsink;
    RunResult out;
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(cached->runMu);
        // Run-level knobs. The policy is set for every cell (a plain
        // cell must undo a predecessor's override on the shared
        // System); the engine sticks, so mixed-engine matrices must
        // set it on every cell.
        if (cell.engine)
            cached->sys.setCoreEngine(*cell.engine);
        cached->sys.setMisspecPolicy(cell.policy, cell.policySeed);
        if (ledger)
            rec.engine = coreEngineName(cached->sys.coreEngine());
        auto input = [&w, run_seed](Module &m) {
            w.setInput(m, run_seed);
        };
        if (detail) {
            amap.emplace(cached->sys.program());
            bmap.emplace(cached->sys.program());
            asink.emplace(*amap);
            bsink.emplace(*bmap);
            RunObservers observers;
            observers.attribution = &*asink;
            observers.blocks = &*bsink;
            out = cached->sys.run(input, {}, observers);
        } else {
            out = cached->sys.run(input);
        }
    }
    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    MetricsRegistry &reg = MetricsRegistry::global();
    MetricsRegistry::Labels wl = {{"workload", w.name}};
    reg.counter("run.cells", wl).add();
    reg.counter("run.instructions", wl).add(out.counters.instructions);
    reg.counter("run.cycles", wl).add(out.counters.cycles);
    reg.counter("run.misspeculations", wl)
        .add(out.counters.misspeculations);
    reg.histogram("run.energy_pj", wl).record(out.totalEnergy);
    reg.histogram("run.epi_pj", wl).record(out.epi);
    reg.histogram("run.cell_wall_sec", wl).record(wall_sec);

    if (ledger) {
        fillRunTelemetry(rec, out.counters, out.l1i, out.l1d, out.l2,
                         out.dram, out.energy, out.totalEnergy,
                         out.epi, out.meanVoltage, out.returnValue,
                         out.outputChecksum, wall_sec);
        rec.setField("log.errors",
                     static_cast<double>(
                         log::count(log::Level::Error) - log_errors0));
        rec.setField("log.warns",
                     static_cast<double>(log::count(log::Level::Warn) -
                                         log_warns0));
        const SqueezeStats &sq = out.squeezeStats;
        rec.setField("squeeze.narrowed", sq.narrowed);
        rec.setField("squeeze.regions", sq.regions);
        rec.setField("squeeze.spec_truncs", sq.specTruncs);
        rec.setField("squeeze.compares_eliminated",
                     sq.comparesEliminated);
        rec.setField("squeeze.bitmasks_elided", sq.bitmasksElided);
        rec.setField("squeeze.static_narrowed", sq.staticNarrowed);
        rec.setField("squeeze.checks_dropped", sq.checksDropped);
        rec.setField("squeeze.regions_elided", sq.regionsElided);
        rec.setField("squeeze.lint_proven_safe", sq.lintProvenSafe);
        rec.setField("squeeze.lint_proven_unsafe",
                     sq.lintProvenUnsafe);
        rec.setField("squeeze.lint_speculative", sq.lintSpeculative);
        rec.setField("squeeze.lint_spec_leaks", sq.lintSpecLeaks);
        rec.setField("squeeze.lint_leaks_discharged",
                     sq.lintLeaksDischarged);
        rec.setField("expand.inlined_calls",
                     out.expandStats.inlinedCalls);
        rec.setField("expand.unrolled_loops",
                     out.expandStats.unrolledLoops);
        const BackendStats &be = out.backendStats;
        rec.setField("backend.static_spill_loads",
                     be.staticSpillLoads);
        rec.setField("backend.static_spill_stores",
                     be.staticSpillStores);
        rec.setField("backend.static_copies", be.staticCopies);
        rec.setField("backend.spilled_vregs", be.spilledVRegs);
        rec.setField("backend.static_insts", be.staticInsts);
        rec.setField("backend.skeleton_insts", be.skeletonInsts);

        if (detail) {
            const auto &sites = amap->sites();
            const auto &activity = asink->activity();
            for (size_t i = 0; i < sites.size(); ++i) {
                const RegionActivity &a = activity[i];
                if (a.entries == 0 && a.misspecs == 0 &&
                    a.handlerInsts == 0)
                    continue;
                LedgerRegionRow row;
                row.function = sites[i].function;
                row.regionId = sites[i].regionId;
                row.srcLine = sites[i].srcLine;
                row.entries = a.entries;
                row.misspecs = a.misspecs;
                row.specInsts = a.specInsts;
                row.handlerInsts = a.handlerInsts;
                row.handlerCycles = a.handlerCycles;
                rec.regions.push_back(std::move(row));
            }
            rec.setField(
                "regions.unattributed_misspecs",
                static_cast<double>(asink->unattributedMisspecs()));

            // Top-K heat rows by cycles; the *_total fields carry the
            // exact whole-run sums so validation reconciles against
            // ActivityCounters even though most rows are dropped.
            const auto &bsites = bmap->sites();
            const auto &bact = bsink->activity();
            std::vector<size_t> order;
            for (size_t i = 0; i < bsites.size(); ++i)
                if (bact[i].insts > 0)
                    order.push_back(i);
            std::sort(order.begin(), order.end(),
                      [&bact](size_t x, size_t y) {
                          return bact[x].cycles > bact[y].cycles;
                      });
            constexpr size_t kTopK = 16;
            if (order.size() > kTopK)
                order.resize(kTopK);
            for (size_t i : order) {
                LedgerHeatRow row;
                row.function = bsites[i].function;
                row.block = bsites[i].block;
                row.regionId = bsites[i].regionId;
                row.srcLine = bsites[i].srcLine;
                row.entries = bact[i].entries;
                row.insts = bact[i].insts;
                row.cycles = bact[i].cycles;
                row.misspecs = bact[i].misspecs;
                rec.heat.push_back(std::move(row));
            }
            rec.setField("heat.total_insts",
                         static_cast<double>(bsink->totalInsts()));
            rec.setField("heat.total_cycles",
                         static_cast<double>(bsink->totalCycles()));
            rec.setField(
                "heat.total_misspecs",
                static_cast<double>(bsink->totalMisspecs()));
        }
        ledger->append(rec);
        if (flightrec::active())
            flightrec::clearInflight();
    }
    return out;
}

std::vector<RunResult>
ExperimentRunner::run(const std::vector<ExperimentCell> &cells)
{
    std::vector<RunResult> results(cells.size());
    // Per-cell wall times (measured inside the worker, so parallelism
    // does not inflate them) feed the matrix-level ledger record's
    // percentile fields.
    std::vector<double> walls(cells.size(), 0.0);
    std::vector<std::future<void>> futs;
    futs.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        futs.push_back(
            pool_.submit([this, &cells, &results, &walls, i] {
                const auto c0 = std::chrono::steady_clock::now();
                results[i] = runCell(cells[i]);
                walls[i] = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - c0)
                               .count();
            }));
    }

    // Drain every future before unwinding: tasks reference the local
    // results vector, so no early rethrow. Report the first failure
    // (submission order), matching what the serial loop would throw.
    std::exception_ptr first;
    for (auto &f : futs) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        stats_.cells += cells.size();
    }
    // One matrix-level record per run() call summarizing the cell
    // wall-time distribution; skipped on failure (a failed cell's wall
    // time is meaningless).
    LedgerWriter *ledger = LedgerWriter::global();
    if (!first && ledger && !cells.empty()) {
        Histogram h;
        for (double wsec : walls)
            h.add(wsec);
        LedgerRecord rec;
        rec.kind = "matrix";
        rec.flavour = artifact::buildFlavour();
        rec.bench = program_invocation_short_name;
        rec.env = captureBitspecEnv();
        rec.setField("matrix.cells",
                     static_cast<double>(cells.size()));
        rec.setField("wall.total_sec", h.sum());
        rec.setField("wall.mean_sec", h.mean());
        rec.setField("wall.p50_sec", h.p50());
        rec.setField("wall.p95_sec", h.p95());
        rec.setField("wall.p99_sec", h.p99());
        ledger->append(rec);
    }
    if (first)
        std::rethrow_exception(first);
    return results;
}

RunResult
ExperimentRunner::evaluate(const Workload &w, const SystemConfig &config,
                           uint64_t profile_seed, uint64_t run_seed)
{
    ExperimentCell cell;
    cell.workload = &w;
    cell.config = config;
    cell.profileSeed = profile_seed;
    cell.runSeed = run_seed;
    RunResult out = runCell(cell);
    std::lock_guard<std::mutex> lock(cacheMu_);
    ++stats_.cells;
    return out;
}

void
ExperimentRunner::withSystem(const Workload &w,
                             const SystemConfig &config,
                             uint64_t profile_seed,
                             const std::function<void(System &)> &fn)
{
    std::shared_ptr<CachedSystem> cached =
        getOrBuild(w, config, profile_seed);
    std::lock_guard<std::mutex> lock(cached->runMu);
    fn(cached->sys);
}

ExperimentStats
ExperimentRunner::stats() const
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    ExperimentStats out = stats_;
    if (store_) {
        const artifact::StoreStats ds = store_->stats();
        out.diskHits = ds.hits;
        out.diskMisses = ds.misses;
        out.diskWrites = ds.writes;
        out.diskInvalid = ds.invalid;
    }
    return out;
}

void
ExperimentRunner::clearCache()
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    cache_.clear();
}

} // namespace bitspec
