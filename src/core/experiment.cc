#include "core/experiment.h"

#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
appendField(std::string &key, const char *name, double v)
{
    key += strFormat(";%s=%.17g", name, v);
}

void
appendField(std::string &key, const char *name, uint64_t v)
{
    key += strFormat(";%s=%llu", name,
                     static_cast<unsigned long long>(v));
}

void
appendField(std::string &key, const char *name, bool v)
{
    key += strFormat(";%s=%d", name, v ? 1 : 0);
}

} // namespace

std::string
ExperimentRunner::systemKey(const Workload &w, const SystemConfig &c,
                            uint64_t profile_seed)
{
    std::string key = w.name;
    appendField(key, "src", fnv1a(w.source));
    appendField(key, "isa", static_cast<uint64_t>(c.isa));
    appendField(key, "squeeze", c.squeeze);
    appendField(key, "heuristic",
                static_cast<uint64_t>(c.squeezeOpts.heuristic));
    appendField(key, "speculate", c.squeezeOpts.speculate);
    appendField(key, "cmpElim", c.squeezeOpts.compareElimination);
    appendField(key, "bitmask", c.squeezeOpts.bitmaskElision);
    appendField(key, "staticKb", c.squeezeOpts.staticAnalysis);
    appendField(key, "unroll",
                static_cast<uint64_t>(c.expander.unrollFactor));
    appendField(key, "maxFn",
                static_cast<uint64_t>(c.expander.maxFunctionSize));
    appendField(key, "maxLoop",
                static_cast<uint64_t>(c.expander.maxLoopSize));
    appendField(key, "expand", c.expander.enabled);
    appendField(key, "dts", c.dts);
    appendField(key, "vNom", c.dtsParams.vNominal);
    appendField(key, "vTh", c.dtsParams.vThreshold);
    appendField(key, "alpha", c.dtsParams.alpha);
    appendField(key, "vMin", c.dtsParams.vMin);
    appendField(key, "fLogic", c.dtsParams.fracLogic);
    appendField(key, "fAddSub", c.dtsParams.fracAddSub);
    appendField(key, "fMulDiv", c.dtsParams.fracMulDiv);
    appendField(key, "fMem", c.dtsParams.fracMem);
    appendField(key, "fBranch", c.dtsParams.fracBranch);
    appendField(key, "widthAware", c.dtsParams.widthAware);
    appendField(key, "fAddSub8", c.dtsParams.fracAddSub8);
    appendField(key, "fLogic8", c.dtsParams.fracLogic8);
    appendField(key, "errRate", c.dtsParams.errorRate);
    appendField(key, "recE", c.dtsParams.recoveryEnergy);
    appendField(key, "eAlu32", c.energy.alu32);
    appendField(key, "eAlu8", c.energy.alu8);
    appendField(key, "eMulDiv", c.energy.mulDiv);
    appendField(key, "eRfR32", c.energy.rfRead32);
    appendField(key, "eRfW32", c.energy.rfWrite32);
    appendField(key, "eRfR8", c.energy.rfRead8);
    appendField(key, "eRfW8", c.energy.rfWrite8);
    appendField(key, "eIc", c.energy.icacheAccess);
    appendField(key, "eDc", c.energy.dcacheAccess);
    appendField(key, "eL2", c.energy.l2Access);
    appendField(key, "eDram", c.energy.dramAccess);
    appendField(key, "ePipe", c.energy.pipelinePerCycle);
    appendField(key, "eMisspec", c.energy.misspecRecovery);
    appendField(key, "pseed", profile_seed);
    return key;
}

ExperimentRunner::ExperimentRunner(unsigned threads) : pool_(threads) {}

ExperimentRunner::~ExperimentRunner() = default;

std::shared_ptr<ExperimentRunner::CachedSystem>
ExperimentRunner::getOrBuild(const Workload &w,
                             const SystemConfig &config,
                             uint64_t profile_seed)
{
    const std::string key = systemKey(w, config, profile_seed);

    std::promise<std::shared_ptr<CachedSystem>> promise;
    std::shared_future<std::shared_ptr<CachedSystem>> fut;
    bool builder = false;
    bool inflight = false;
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            fut = promise.get_future().share();
            cache_.emplace(key, fut);
            builder = true;
            ++stats_.systemsBuilt;
        } else {
            fut = it->second;
            ++stats_.cacheHits;
            inflight = fut.wait_for(std::chrono::seconds(0)) !=
                       std::future_status::ready;
            if (inflight)
                ++stats_.inflightWaits;
        }
    }

    MetricsRegistry &reg = MetricsRegistry::global();
    if (builder) {
        reg.counter("experiment.cache.misses", {{"workload", w.name}})
            .add();
        trace::instant("cache.miss", "experiment",
                       {{"workload", w.name}});
        try {
            auto sys = std::make_shared<CachedSystem>(w, config,
                                                      profile_seed);
            // Absorb the build's squeezer stats once per compile (runs
            // reusing this System do not re-count them).
            const SqueezeStats &sq = sys->sys.squeezeStats();
            MetricsRegistry::Labels wl = {{"workload", w.name}};
            reg.counter("squeeze.narrowed", wl).add(sq.narrowed);
            reg.counter("squeeze.regions", wl).add(sq.regions);
            reg.counter("squeeze.checks_dropped", wl)
                .add(sq.checksDropped);
            reg.counter("lint.proven_safe", wl).add(sq.lintProvenSafe);
            reg.counter("lint.proven_unsafe", wl)
                .add(sq.lintProvenUnsafe);
            promise.set_value(std::move(sys));
        } catch (...) {
            // Every cell sharing this key sees the build failure.
            promise.set_exception(std::current_exception());
        }
    } else {
        reg.counter("experiment.cache.hits", {{"workload", w.name}})
            .add();
        if (inflight)
            reg.counter("experiment.cache.inflight_waits",
                        {{"workload", w.name}})
                .add();
        trace::instant("cache.hit", "experiment",
                       {{"workload", w.name},
                        {"inflight", inflight ? "1" : "0"}});
    }
    return fut.get();
}

RunResult
ExperimentRunner::runCell(const ExperimentCell &cell)
{
    bsAssert(cell.workload != nullptr, "experiment cell w/o workload");
    // Worker threads are owned by the support-layer pool, which cannot
    // depend on obs; name their trace lanes on first use instead.
    trace::nameThisThread("worker");
    trace::Span span("experiment.cell", "experiment");
    span.arg("workload", cell.workload->name);
    span.arg("squeeze", cell.config.squeeze ? "1" : "0");
    span.arg("run_seed", std::to_string(cell.runSeed));
    std::shared_ptr<CachedSystem> cached =
        getOrBuild(*cell.workload, cell.config, cell.profileSeed);
    const Workload &w = *cell.workload;
    uint64_t run_seed = cell.runSeed;
    RunResult out;
    {
        std::lock_guard<std::mutex> lock(cached->runMu);
        out = cached->sys.run(
            [&w, run_seed](Module &m) { w.setInput(m, run_seed); });
    }

    MetricsRegistry &reg = MetricsRegistry::global();
    MetricsRegistry::Labels wl = {{"workload", w.name}};
    reg.counter("run.cells", wl).add();
    reg.counter("run.instructions", wl).add(out.counters.instructions);
    reg.counter("run.cycles", wl).add(out.counters.cycles);
    reg.counter("run.misspeculations", wl)
        .add(out.counters.misspeculations);
    reg.histogram("run.energy_pj", wl).record(out.totalEnergy);
    reg.histogram("run.epi_pj", wl).record(out.epi);
    return out;
}

std::vector<RunResult>
ExperimentRunner::run(const std::vector<ExperimentCell> &cells)
{
    std::vector<RunResult> results(cells.size());
    std::vector<std::future<void>> futs;
    futs.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        futs.push_back(pool_.submit([this, &cells, &results, i] {
            results[i] = runCell(cells[i]);
        }));
    }

    // Drain every future before unwinding: tasks reference the local
    // results vector, so no early rethrow. Report the first failure
    // (submission order), matching what the serial loop would throw.
    std::exception_ptr first;
    for (auto &f : futs) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        stats_.cells += cells.size();
    }
    if (first)
        std::rethrow_exception(first);
    return results;
}

RunResult
ExperimentRunner::evaluate(const Workload &w, const SystemConfig &config,
                           uint64_t profile_seed, uint64_t run_seed)
{
    ExperimentCell cell{&w, config, profile_seed, run_seed};
    RunResult out = runCell(cell);
    std::lock_guard<std::mutex> lock(cacheMu_);
    ++stats_.cells;
    return out;
}

ExperimentStats
ExperimentRunner::stats() const
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    return stats_;
}

void
ExperimentRunner::clearCache()
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    cache_.clear();
}

} // namespace bitspec
