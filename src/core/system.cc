#include "core/system.h"

#include "analysis/pipeline.h"
#include "analysis/verifier.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "profile/bitwidth_profile.h"
#include "support/env.h"
#include "support/error.h"

namespace bitspec
{

namespace
{

CoreEngine
engineFromEnv()
{
    const std::string v =
        env::getString("BITSPEC_CORE_ENGINE", "fast");
    if (v == "fast")
        return CoreEngine::Fast;
    if (v == "legacy")
        return CoreEngine::Legacy;
    fatal("BITSPEC_CORE_ENGINE must be \"fast\" or \"legacy\", got "
          "\"" + v + "\"");
}

} // namespace

SystemConfig
SystemConfig::baseline()
{
    SystemConfig c;
    c.isa = TargetISA::Baseline;
    c.squeeze = false;
    return c;
}

SystemConfig
SystemConfig::bitspec(Heuristic h)
{
    SystemConfig c;
    c.isa = TargetISA::BitSpec;
    c.squeeze = true;
    c.squeezeOpts.heuristic = h;
    return c;
}

SystemConfig
SystemConfig::noSpeculation()
{
    SystemConfig c;
    c.isa = TargetISA::BitSpec;
    c.squeeze = true;
    c.squeezeOpts.speculate = false;
    return c;
}

SystemConfig
SystemConfig::dtsOnly()
{
    SystemConfig c = baseline();
    c.dts = true;
    return c;
}

SystemConfig
SystemConfig::dtsPlusBitspec(Heuristic h)
{
    SystemConfig c = bitspec(h);
    c.dts = true;
    return c;
}

System::System(const std::string &source, const SystemConfig &config,
               const std::function<void(Module &)> &train_input,
               const std::vector<uint64_t> &train_args)
    : config_(config), engine_(engineFromEnv())
{
    trace::Span span("system.build", "compile");
    span.arg("squeeze", config_.squeeze ? "1" : "0");
    span.arg("isa", config_.isa == TargetISA::BitSpec ? "bitspec"
                                                      : "baseline");
    module_ = compileSource(source);
    if (train_input)
        train_input(*module_);
    pipelineCheckpoint(*module_, "frontend:irgen");

    expandStats_ = expandModule(*module_, config_.expander);
    pipelineCheckpoint(*module_, "transform:expander");

    // One persistent training interpreter: a single profiled run yields
    // both the dynamic IR step count and the bitwidth profile (the
    // training input used to be executed twice for this).
    trainInterp_ = std::make_unique<Interpreter>(*module_);
    // Differential soundness check (BITSPEC_VERIFY_EACH): every value
    // the training run observes must respect its known-bits ceiling.
    if (pipelineVerifyEnabled())
        trainInterp_->enableStaticBoundsCheck();
    if (config_.squeeze) {
        BitwidthProfile profile;
        profile.profileRun(*trainInterp_, "main", train_args);
        trainIrSteps_ = trainInterp_->stats().steps;
        squeezeStats_ =
            squeezeModule(*module_, profile, config_.squeezeOpts);
        // The squeezer restructured the module; cached decoded
        // functions are stale.
        trainInterp_->invalidate();
        pipelineCheckpoint(*module_, "transform:squeezer");
    } else {
        trainInterp_->run("main", train_args);
        trainIrSteps_ = trainInterp_->stats().steps;
    }

    compiled_ = compileModule(*module_, config_.isa);

    globalSnapshot_.reserve(module_->globals().size());
    for (const auto &g : module_->globals())
        globalSnapshot_.emplace_back(g.get(), g->data());
}

System::System(const artifact::SystemSnapshot &snap,
               const SystemConfig &config)
    : config_(config), engine_(engineFromEnv())
{
    trace::Span span("system.restore", "compile");
    module_ = std::make_unique<Module>();
    for (const artifact::SystemSnapshot::GlobalImage &g :
         snap.globals) {
        Global *ng = module_->addGlobal(
            g.name, g.elemBits, static_cast<size_t>(g.elemCount));
        ng->setAddress(g.address);
        ng->setData(g.data);
    }
    compiled_.program = snap.program;
    compiled_.stats = snap.backendStats;
    squeezeStats_ = snap.squeezeStats;
    expandStats_ = snap.expandStats;
    trainIrSteps_ = snap.profiledIrSteps;

    globalSnapshot_.reserve(module_->globals().size());
    for (const auto &g : module_->globals())
        globalSnapshot_.emplace_back(g.get(), g->data());
}

artifact::SystemSnapshot
System::makeSnapshot(const std::string &key) const
{
    artifact::SystemSnapshot snap;
    snap.key = key;
    snap.program = compiled_.program;
    snap.backendStats = compiled_.stats;
    snap.squeezeStats = squeezeStats_;
    snap.expandStats = expandStats_;
    snap.profiledIrSteps = trainIrSteps_;
    snap.globals.reserve(globalSnapshot_.size());
    // The pristine post-profiling images, not the possibly
    // run-mutated live data (run() restores from this same snapshot).
    for (const auto &[g, bytes] : globalSnapshot_) {
        artifact::SystemSnapshot::GlobalImage img;
        img.name = g->name();
        img.elemBits = g->elemBits();
        img.elemCount = g->elemCount();
        img.address = g->address();
        img.data = bytes;
        snap.globals.push_back(std::move(img));
    }
    return snap;
}

void
System::setCoreEngine(CoreEngine engine)
{
    if (engine == engine_)
        return;
    engine_ = engine;
    // Rebuilt lazily on the next fast run; dropping the memos here
    // mirrors Interpreter::invalidate() — no state may be carried
    // across an engine switch.
    fastCore_.reset();
    predecoded_.reset();
}

RunResult
System::run(const std::function<void(Module &)> &run_input,
            const std::vector<uint32_t> &args)
{
    return run(run_input, args, nullptr);
}

RunResult
System::run(const std::function<void(Module &)> &run_input,
            const std::vector<uint32_t> &args, AttributionSink *attr)
{
    RunObservers obs;
    obs.attribution = attr;
    return run(run_input, args, obs);
}

RunResult
System::run(const std::function<void(Module &)> &run_input,
            const std::vector<uint32_t> &args,
            const RunObservers &observers)
{
    trace::Span span("system.run", "execute");
    for (auto &[g, bytes] : globalSnapshot_)
        g->setData(bytes);
    if (run_input)
        run_input(*module_);

    // Any traced run gets counter tracks alongside its spans unless
    // the caller brought its own emitter.
    CounterTrackEmitter traced_tracks;
    CounterTrackEmitter *tracks = observers.tracks;
    if (!tracks && trace::enabled())
        tracks = &traced_tracks;

    RunResult out;
    if (engine_ == CoreEngine::Fast) {
        if (!fastCore_) {
            predecoded_ = std::make_unique<PredecodedProgram>(
                compiled_.program);
            fastCore_ =
                std::make_unique<FastCore>(*predecoded_, *module_);
        } else {
            // Fresh run state (the constructor's reset covered the
            // first run); block memos survive — they depend only on
            // the immutable pre-decoded code.
            fastCore_->reset();
        }
        FastCore &core = *fastCore_;
        core.setAttribution(observers.attribution);
        core.setBlockProfiler(observers.blocks);
        core.setCounterTracks(tracks);
        core.setMisspecPolicy(misspecPolicy_, misspecSeed_);
        out.returnValue = core.run(args);
        out.outputChecksum = core.outputChecksum();
        out.counters = core.counters();
        out.l1i = core.memory().l1i();
        out.l1d = core.memory().l1d();
        out.l2 = core.memory().l2();
        out.dram = core.memory().dram();
        out.energy =
            computeEnergy(core.counters(), core.memory(),
                          config_.energy);
    } else {
        Core core(compiled_.program, *module_);
        if (observers.attribution)
            core.setAttribution(observers.attribution);
        if (observers.blocks)
            core.setBlockProfiler(observers.blocks);
        if (tracks)
            core.setCounterTracks(tracks);
        core.setMisspecPolicy(misspecPolicy_, misspecSeed_);
        out.returnValue = core.run(args);
        out.outputChecksum = core.outputChecksum();
        out.counters = core.counters();
        out.l1i = core.memory().l1i();
        out.l1d = core.memory().l1d();
        out.l2 = core.memory().l2();
        out.dram = core.memory().dram();
        out.energy = computeEnergy(core, config_.energy);
    }
    if (config_.dts) {
        DtsResult d =
            applyDts(out.energy, out.counters, config_.dtsParams);
        out.totalEnergy = d.scaledEnergy;
        out.meanVoltage = d.meanVoltage;
    } else {
        out.totalEnergy = out.energy.total();
        out.meanVoltage = config_.dtsParams.vNominal;
    }
    out.epi = out.counters.instructions
                  ? out.totalEnergy /
                        static_cast<double>(out.counters.instructions)
                  : 0.0;

    out.squeezeStats = squeezeStats_;
    out.expandStats = expandStats_;
    out.backendStats = compiled_.stats;
    return out;
}

} // namespace bitspec
