/**
 * @file
 * Forward known-bits + unsigned value-range analysis.
 *
 * For every SSA value the analysis tracks a KnownBits fact: a
 * known-zero mask, a known-one mask, and an unsigned interval
 * [lo, hi], all at the value's type width (values are unsigned at
 * their type width, matching the profiler and RequiredBits). The
 * fixed point runs forward over the CFG in reverse post order; phi
 * facts join their incoming facts, and interval bounds are widened to
 * the type range after a per-value update budget so loop counters
 * terminate (the mask component is a finite lattice and needs no
 * widening).
 *
 * Speculative instructions get *tighter* transfer functions: on the
 * non-misspeculating path a speculative add produces the exact sum
 * (no carry out), a speculative truncate reproduces its operand and a
 * speculative load fits the slice — these post-conditions hold on
 * every path that reaches code dominated by the instruction, because
 * after a misspeculation control resumes in CFG_orig and never
 * re-enters the speculative clone.
 *
 * This is the static counterpart to the bitwidth profile: where the
 * profile says "this value *was* small on the training input", known
 * bits says "this value *is always* small", which lets the squeezer
 * narrow without a check and lets the lint pass prove speculative
 * slices safe or doomed (see lint.h).
 */

#ifndef BITSPEC_ANALYSIS_KNOWN_BITS_H_
#define BITSPEC_ANALYSIS_KNOWN_BITS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "ir/function.h"
#include "support/bits.h"

namespace bitspec
{

/** Per-value dataflow fact: bit masks plus an unsigned interval. */
struct KnownBits
{
    uint64_t zero = 0;   ///< Bits known to be 0 (includes bits >= width).
    uint64_t one = 0;    ///< Bits known to be 1.
    uint64_t lo = 0;     ///< Unsigned lower bound.
    uint64_t hi = ~0ULL; ///< Unsigned upper bound.

    /** Nothing known about a @p bits-wide value. */
    static KnownBits top(unsigned bits);

    /** Exact fact for constant @p v at width @p bits. */
    static KnownBits constant(uint64_t v, unsigned bits);

    /** Pull masks and bounds against each other: leading zeros of hi
     *  become known-zero bits, the masks clamp [lo, hi], and lo is
     *  raised to the known-one floor. Idempotent. */
    KnownBits normalized(unsigned bits) const;

    /** True when every possible value fits @p width bits unsigned. */
    bool fits(unsigned width) const { return hi <= lowMask(width); }

    /** RequiredBits upper bound over all possible values. */
    unsigned upperBoundBits() const { return requiredBits(hi); }

    /** Exactly one possible value? */
    bool isConstant() const { return lo == hi; }

    bool operator==(const KnownBits &) const = default;

    std::string str() const; ///< "zero=.. one=.. [lo,hi]" for tests.
};

/** Lattice join (control-flow merge): union of possible values. */
KnownBits kbJoin(const KnownBits &a, const KnownBits &b, unsigned bits);

/** @name Per-opcode transfer functions
 * All operate at result width @p bits and return normalized facts;
 * exposed individually so the golden unit tests can hit them without
 * building IR. Shift/div transfer functions take the full fact of the
 * second operand and exploit it only when it is constant.
 */
/// @{
KnownBits kbAdd(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbSub(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbMul(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbUDiv(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbURem(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbAnd(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbOr(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbXor(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbShl(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbLShr(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbAShr(const KnownBits &a, const KnownBits &b, unsigned bits);
KnownBits kbTrunc(const KnownBits &a, unsigned bits);
KnownBits kbZExt(const KnownBits &a, unsigned fromBits, unsigned bits);
KnownBits kbSExt(const KnownBits &a, unsigned fromBits, unsigned bits);
/// @}

/** Speculative-form transfers: facts on the non-misspeculating path
 *  (Table 1 — the only path on which the result is defined). */
/// @{
KnownBits kbSpecAdd(const KnownBits &a, const KnownBits &b,
                    unsigned bits);
KnownBits kbSpecSub(const KnownBits &a, const KnownBits &b,
                    unsigned bits);
KnownBits kbSpecTrunc(const KnownBits &a, unsigned bits);
/// @}

/**
 * Function-level fixed point. Facts are computed once at
 * construction; the function must not be mutated while the analysis
 * is queried (facts are keyed by instruction pointer).
 */
class KnownBitsAnalysis
{
  public:
    /** Interval updates per value before widening to the type range. */
    static constexpr unsigned kWideningBudget = 8;
    /** Full RPO passes before bailing to top (safety net). */
    static constexpr unsigned kMaxIterations = 64;

    explicit KnownBitsAnalysis(Function &f);

    /** Fact for any value: constants fold exactly, arguments,
     *  globals and unanalyzed instructions are type-top. */
    KnownBits known(const Value *v) const;

    /** Static unsigned upper bound (inclusive). */
    uint64_t upperBound(const Value *v) const { return known(v).hi; }

    /** Provably fits @p width bits on every execution. */
    bool
    fits(const Value *v, unsigned width) const
    {
        return known(v).fits(width);
    }

  private:
    KnownBits transfer(const Instruction *inst) const;

    std::unordered_map<const Instruction *, KnownBits> facts_;
    std::unordered_map<const Instruction *, unsigned> updates_;
};

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_KNOWN_BITS_H_
