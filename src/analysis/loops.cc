#include "analysis/loops.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "analysis/cfg.h"

namespace bitspec
{

std::vector<BasicBlock *>
Loop::exitTargets() const
{
    std::vector<BasicBlock *> out;
    for (const BasicBlock *bb : blocks) {
        for (BasicBlock *succ : bb->successors()) {
            if (!contains(succ) &&
                std::find(out.begin(), out.end(), succ) == out.end()) {
                out.push_back(succ);
            }
        }
    }
    return out;
}

std::vector<Loop>
findLoops(Function &f, const DomTree &dt)
{
    std::map<BasicBlock *, Loop> by_header;

    for (BasicBlock *bb : reachableBlocks(f)) {
        for (BasicBlock *succ : bb->successors()) {
            if (!dt.dominates(succ, bb))
                continue; // Not a back edge.
            // Natural loop of back edge bb -> succ.
            Loop &loop = by_header[succ];
            loop.header = succ;
            loop.latches.push_back(bb);
            if (loop.blocks.empty())
                loop.blocks.push_back(succ);
            // Walk predecessors from the latch up to the header.
            std::vector<BasicBlock *> work{bb};
            auto preds = f.predecessors();
            while (!work.empty()) {
                BasicBlock *cur = work.back();
                work.pop_back();
                if (loop.contains(cur))
                    continue;
                loop.blocks.push_back(cur);
                for (BasicBlock *p : preds[cur])
                    if (dt.isReachable(p))
                        work.push_back(p);
            }
        }
    }

    std::vector<Loop> loops;
    for (auto &[header, loop] : by_header)
        loops.push_back(std::move(loop));
    // Order must not depend on heap addresses (by_header iterates in
    // pointer order): under the expander's function-size budget the
    // unroll order decides *which* loops fit, so address-ordered
    // results make codegen vary run to run. Sort by the header's
    // position in the function, then stable-sort inner loops (fewer
    // blocks) first so unrolling processes them first.
    std::unordered_map<const BasicBlock *, unsigned> pos;
    unsigned next = 0;
    for (const auto &bb : f.blocks())
        pos[bb.get()] = next++;
    std::sort(loops.begin(), loops.end(),
              [&](const Loop &a, const Loop &b) {
                  return pos.at(a.header) < pos.at(b.header);
              });
    std::stable_sort(loops.begin(), loops.end(),
                     [](const Loop &a, const Loop &b) {
                         return a.blocks.size() < b.blocks.size();
                     });
    return loops;
}

} // namespace bitspec
