/**
 * @file
 * IR-level liveness over dense value ids.
 *
 * When built with handler edges, blocks of speculative regions count as
 * predecessors of their handler (paper Eq. 2): anything the handler
 * needs is treated as live throughout the region, which is exactly what
 * makes re-execution after a mid-block misspeculation sound.
 */

#ifndef BITSPEC_ANALYSIS_LIVENESS_H_
#define BITSPEC_ANALYSIS_LIVENESS_H_

#include <map>
#include <set>
#include <vector>

#include "ir/function.h"

namespace bitspec
{

/** Per-block live-in/live-out sets of Values (args + instructions). */
class Liveness
{
  public:
    /**
     * @param f Function to analyse; renumber() is called on it.
     * @param handler_edges Apply the SMIR predecessor rule (Eq. 2).
     */
    Liveness(Function &f, bool handler_edges);

    const std::set<const Value *> &liveIn(const BasicBlock *bb) const;
    const std::set<const Value *> &liveOut(const BasicBlock *bb) const;

    bool
    isLiveIn(const Value *v, const BasicBlock *bb) const
    {
        return liveIn(bb).count(v) > 0;
    }

  private:
    std::map<const BasicBlock *, std::set<const Value *>> liveIn_;
    std::map<const BasicBlock *, std::set<const Value *>> liveOut_;
    std::set<const Value *> empty_;
};

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_LIVENESS_H_
