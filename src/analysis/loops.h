/**
 * @file
 * Natural-loop detection for the expander's unroller.
 */

#ifndef BITSPEC_ANALYSIS_LOOPS_H_
#define BITSPEC_ANALYSIS_LOOPS_H_

#include <set>
#include <vector>

#include "analysis/dominators.h"
#include "ir/function.h"

namespace bitspec
{

/** A natural loop: header plus body blocks (header included). */
struct Loop
{
    BasicBlock *header = nullptr;
    /** Blocks of the loop, header first. */
    std::vector<BasicBlock *> blocks;
    /** In-loop predecessors of the header (sources of back edges). */
    std::vector<BasicBlock *> latches;

    bool
    contains(const BasicBlock *bb) const
    {
        for (const BasicBlock *b : blocks)
            if (b == bb)
                return true;
        return false;
    }

    /** Blocks outside the loop that loop blocks branch to. */
    std::vector<BasicBlock *> exitTargets() const;
};

/**
 * Find all natural loops of @p f (one per header; back edges to the same
 * header are merged). Inner loops are returned before enclosing ones.
 */
std::vector<Loop> findLoops(Function &f, const DomTree &dt);

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_LOOPS_H_
