/**
 * @file
 * Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
 */

#ifndef BITSPEC_ANALYSIS_DOMINATORS_H_
#define BITSPEC_ANALYSIS_DOMINATORS_H_

#include <map>
#include <vector>

#include "ir/function.h"

namespace bitspec
{

/** Dominator tree over the reachable blocks of a function. */
class DomTree
{
  public:
    explicit DomTree(Function &f);

    /** Immediate dominator; the entry's idom is itself. */
    BasicBlock *idom(BasicBlock *bb) const;

    /** Does @p a dominate @p b? (Reflexive.) */
    bool dominates(BasicBlock *a, BasicBlock *b) const;

    /**
     * Does the definition @p def dominate the use site (@p user inside
     * @p use_block)? For phis the use site is the incoming block's end.
     */
    bool dominatesUse(const Instruction *def, const Instruction *user,
                      size_t operand_index) const;

    /** True iff @p bb was reachable when the tree was built. */
    bool isReachable(BasicBlock *bb) const
    {
        return idom_.count(bb) > 0;
    }

  private:
    std::map<BasicBlock *, BasicBlock *> idom_;
    std::map<BasicBlock *, unsigned> rpoIndex_;
};

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_DOMINATORS_H_
