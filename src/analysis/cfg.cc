#include "analysis/cfg.h"

#include <algorithm>
#include <set>

#include "ir/builder.h"

namespace bitspec
{

std::vector<BasicBlock *>
reversePostOrder(Function &f)
{
    std::vector<BasicBlock *> post;
    std::set<BasicBlock *> visited;
    // Iterative DFS with an explicit stack of (block, next-successor).
    std::vector<std::pair<BasicBlock *, size_t>> stack;
    BasicBlock *entry = f.entry();
    stack.emplace_back(entry, 0);
    visited.insert(entry);
    while (!stack.empty()) {
        auto &[bb, idx] = stack.back();
        auto succs = bb->successors();
        if (idx < succs.size()) {
            BasicBlock *next = succs[idx++];
            if (visited.insert(next).second)
                stack.emplace_back(next, 0);
        } else {
            post.push_back(bb);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

std::vector<BasicBlock *>
reachableBlocks(Function &f)
{
    return reversePostOrder(f);
}

std::map<const BasicBlock *, std::vector<BasicBlock *>>
predecessorMap(Function &f, bool handler_edges)
{
    auto preds = f.predecessors();
    if (handler_edges) {
        for (const auto &sr : f.specRegions())
            for (BasicBlock *member : sr->blocks)
                preds[sr->handler].push_back(member);
    }
    return preds;
}

bool
isIdempotent(const BasicBlock &bb)
{
    bool has_load = false, has_store = false;
    for (const auto &inst : bb.insts()) {
        if (inst->isVolatileOp() || inst->isCall())
            return false;
        has_load |= inst->op() == Opcode::Load;
        has_store |= inst->op() == Opcode::Store;
    }
    // Loads-only and stores-only blocks re-execute safely (no WAR
    // dependency can exist, paper Eq. 4); mixed blocks cannot.
    return !(has_load && has_store);
}

void
removeUnreachableBlocks(Function &f)
{
    auto reachable = reachableBlocks(f);
    std::set<BasicBlock *> live(reachable.begin(), reachable.end());
    // Handlers are reachable only via misspeculation; keep them and
    // anything reachable from them.
    std::vector<BasicBlock *> work;
    for (const auto &sr : f.specRegions()) {
        bool member_live = std::any_of(
            sr->blocks.begin(), sr->blocks.end(),
            [&](BasicBlock *bb) { return live.count(bb) > 0; });
        if (member_live && live.insert(sr->handler).second)
            work.push_back(sr->handler);
    }
    while (!work.empty()) {
        BasicBlock *bb = work.back();
        work.pop_back();
        for (BasicBlock *succ : bb->successors())
            if (live.insert(succ).second)
                work.push_back(succ);
    }

    // Drop phi inputs that come from dying blocks.
    for (BasicBlock *bb : live) {
        for (Instruction *phi : bb->phis()) {
            for (size_t i = phi->numOperands(); i-- > 0;) {
                if (!live.count(phi->blockOperand(i)))
                    phi->removePhiIncoming(i);
            }
        }
    }

    // References from live code into dying blocks can remain on
    // control-flow paths that can never execute (e.g. SSA-repair phis
    // materialise a reaching definition for every structural
    // predecessor). Replace them with zero before the defs are freed.
    if (Module *m = f.parent()) {
        for (BasicBlock *bb : live) {
            for (auto &inst : bb->insts()) {
                for (size_t i = 0; i < inst->numOperands(); ++i) {
                    Value *op = inst->operand(i);
                    if (!op->isInstruction())
                        continue;
                    auto *def = static_cast<Instruction *>(op);
                    if (!live.count(def->parent())) {
                        inst->setOperand(
                            i, m->getConst(def->type(), 0));
                    }
                }
            }
        }
    }

    // Drop dead regions and dead blocks.
    auto &regions = f.specRegionsMut();
    for (auto &sr : regions) {
        std::erase_if(sr->blocks, [&](BasicBlock *bb) {
            return live.count(bb) == 0;
        });
    }
    std::erase_if(regions, [&](const std::unique_ptr<SpecRegion> &sr) {
        return sr->blocks.empty();
    });

    f.removeBlocksIf([&](BasicBlock *bb) { return live.count(bb) == 0; });
}

BasicBlock *
splitEdge(Function &f, BasicBlock *from, BasicBlock *to)
{
    BasicBlock *mid = f.addBlock(from->name() + ".to." + to->name());
    IRBuilder b(nullptr);
    b.setInsertPoint(mid);
    b.br(to);

    Instruction *term = from->terminator();
    for (size_t i = 0; i < term->blockOperands().size(); ++i)
        if (term->blockOperand(i) == to)
            term->setBlockOperand(i, mid);

    for (Instruction *phi : to->phis())
        for (size_t i = 0; i < phi->blockOperands().size(); ++i)
            if (phi->blockOperand(i) == from)
                phi->setBlockOperand(i, mid);

    return mid;
}

} // namespace bitspec
