/**
 * @file
 * CFG utilities: orderings, predecessors and idempotence queries.
 */

#ifndef BITSPEC_ANALYSIS_CFG_H_
#define BITSPEC_ANALYSIS_CFG_H_

#include <map>
#include <vector>

#include "ir/function.h"

namespace bitspec
{

/** Blocks in reverse post order from the entry (reachable only). */
std::vector<BasicBlock *> reversePostOrder(Function &f);

/** Blocks reachable from the entry. */
std::vector<BasicBlock *> reachableBlocks(Function &f);

/**
 * Predecessor map. When @p handler_edges is set, every block of a
 * speculative region is additionally treated as a predecessor of the
 * region's handler — the SMIR predecessor rule (paper Eq. 2) that makes
 * liveness and register allocation correct under misspeculation.
 */
std::map<const BasicBlock *, std::vector<BasicBlock *>>
predecessorMap(Function &f, bool handler_edges);

/**
 * Idempotent? (paper §3.2.3): a block that may be safely re-executed.
 * True iff the block contains no volatile operation, no call, and not
 * both loads and stores (Eq. 4: loads-only or stores-only blocks carry
 * no write-after-read dependency and re-execute safely).
 */
bool isIdempotent(const BasicBlock &bb);

/** Erase blocks unreachable from the entry; fixes up phi inputs. */
void removeUnreachableBlocks(Function &f);

/**
 * Split the critical edge from @p from to @p to by inserting a fresh
 * block; updates the terminator and @p to's phis. Returns the new block.
 */
BasicBlock *splitEdge(Function &f, BasicBlock *from, BasicBlock *to);

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_CFG_H_
