#include "analysis/known_bits.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <vector>

#include "analysis/cfg.h"
#include "obs/trace.h"

namespace bitspec
{

namespace
{

uint64_t
maskOf(unsigned bits)
{
    return bits == 0 ? 0 : lowMask(bits);
}

/** Leading-zero mask implied by an upper bound: every bit position
 *  that @p hi cannot reach is known zero. */
uint64_t
leadingZeros(uint64_t hi)
{
    if (hi == 0)
        return ~0ULL;
    unsigned w = requiredBits(hi);
    return w >= 64 ? 0 : ~lowMask(w);
}

/** Known result masks of an N-bit add-with-carry (the LLVM
 *  computeForAddCarry scheme, emulated at 64 bits then masked).
 *  @p carry_zero / @p carry_one describe the carry-in. */
struct Masks
{
    uint64_t zero;
    uint64_t one;
};

Masks
addCarryMasks(uint64_t az, uint64_t ao, uint64_t bz, uint64_t bo,
              bool carry_zero, bool carry_one, uint64_t mask)
{
    az &= mask;
    ao &= mask;
    bz &= mask;
    bo &= mask;
    uint64_t max_a = ~az & mask;
    uint64_t max_b = ~bz & mask;
    uint64_t psz = (max_a + max_b + (carry_zero ? 0 : 1)) & mask;
    uint64_t pso = (ao + bo + (carry_one ? 1 : 0)) & mask;
    uint64_t carry_kz = ~(psz ^ az ^ bz);
    uint64_t carry_ko = pso ^ ao ^ bo;
    uint64_t known = (az | ao) & (bz | bo) & (carry_kz | carry_ko);
    return {~psz & known & mask, pso & known & mask};
}

/** Number of provably-zero trailing bits. */
unsigned
trailingZeros(const KnownBits &a)
{
    return static_cast<unsigned>(std::countr_one(a.zero));
}

} // namespace

KnownBits
KnownBits::top(unsigned bits)
{
    KnownBits k;
    k.zero = ~maskOf(bits);
    k.one = 0;
    k.lo = 0;
    k.hi = maskOf(bits);
    return k;
}

KnownBits
KnownBits::constant(uint64_t v, unsigned bits)
{
    v &= maskOf(bits);
    KnownBits k;
    k.zero = ~v;
    k.one = v;
    k.lo = v;
    k.hi = v;
    return k;
}

KnownBits
KnownBits::normalized(unsigned bits) const
{
    uint64_t mask = maskOf(bits);
    KnownBits k = *this;
    k.zero |= ~mask;
    k.one &= mask;
    // A one bit contradicting a zero bit means the program point is
    // unreachable; any fact is sound there, so resolve toward zero.
    k.one &= ~k.zero;
    k.hi = std::min(k.hi, mask);

    // Pull masks and interval against each other to a (small) fixed
    // point: leading zeros of hi extend the zero mask, the zero mask
    // caps hi, and the one mask floors lo.
    for (int i = 0; i < 4; ++i) {
        uint64_t z = k.zero | leadingZeros(k.hi);
        uint64_t hi = std::min(k.hi, ~z);
        uint64_t lo = std::max(k.lo, k.one);
        if (hi < lo)
            lo = hi; // Unreachable; clamp to stay well-formed.
        if (z == k.zero && hi == k.hi && lo == k.lo)
            break;
        k.zero = z;
        k.hi = hi;
        k.lo = lo;
    }
    if (k.lo == k.hi) {
        k.zero = ~k.lo;
        k.one = k.lo;
    }
    return k;
}

std::string
KnownBits::str() const
{
    std::ostringstream os;
    os << std::hex << "zero=0x" << zero << " one=0x" << one << std::dec
       << " [" << lo << "," << hi << "]";
    return os.str();
}

KnownBits
kbJoin(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    KnownBits k;
    k.zero = a.zero & b.zero;
    k.one = a.one & b.one;
    k.lo = std::min(a.lo, b.lo);
    k.hi = std::max(a.hi, b.hi);
    return k.normalized(bits);
}

KnownBits
kbAdd(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    uint64_t mask = maskOf(bits);
    Masks m = addCarryMasks(a.zero, a.one, b.zero, b.one,
                            /*carry_zero=*/true, /*carry_one=*/false,
                            mask);
    KnownBits k = KnownBits::top(bits);
    k.zero |= m.zero;
    k.one = m.one;
    // Interval: exact when the true sum cannot wrap at the type width.
    if (b.hi <= mask - a.hi) {
        k.lo = a.lo + b.lo;
        k.hi = a.hi + b.hi;
    }
    return k.normalized(bits);
}

KnownBits
kbSub(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    uint64_t mask = maskOf(bits);
    // a - b == a + ~b + 1; ~b swaps the known masks.
    Masks m = addCarryMasks(a.zero, a.one, b.one & mask, b.zero & mask,
                            /*carry_zero=*/false, /*carry_one=*/true,
                            mask);
    KnownBits k = KnownBits::top(bits);
    k.zero |= m.zero;
    k.one = m.one;
    // Interval: exact when no borrow is possible.
    if (a.lo >= b.hi) {
        k.lo = a.lo - b.hi;
        k.hi = a.hi - b.lo;
    }
    return k.normalized(bits);
}

KnownBits
kbMul(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    uint64_t mask = maskOf(bits);
    KnownBits k = KnownBits::top(bits);
    unsigned tz = trailingZeros(a) + trailingZeros(b);
    if (tz > 0)
        k.zero |= lowMask(std::min(tz, 64u));
    unsigned __int128 p =
        static_cast<unsigned __int128>(a.hi) * b.hi;
    if (p <= mask) {
        k.lo = a.lo * b.lo;
        k.hi = static_cast<uint64_t>(p);
    }
    return k.normalized(bits);
}

KnownBits
kbUDiv(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    KnownBits k = KnownBits::top(bits);
    if (b.lo >= 1) {
        k.lo = a.lo / b.hi;
        k.hi = a.hi / b.lo;
    }
    return k.normalized(bits);
}

KnownBits
kbURem(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    if (b.lo >= 1 && a.hi < b.lo)
        return a.normalized(bits); // Remainder is the dividend itself.
    KnownBits k = KnownBits::top(bits);
    if (b.lo >= 1) {
        k.lo = 0;
        k.hi = std::min(a.hi, b.hi - 1);
    }
    return k.normalized(bits);
}

KnownBits
kbAnd(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    KnownBits k;
    k.zero = a.zero | b.zero;
    k.one = a.one & b.one;
    k.lo = k.one;
    k.hi = std::min(a.hi, b.hi);
    return k.normalized(bits);
}

KnownBits
kbOr(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    KnownBits k;
    k.zero = a.zero & b.zero;
    k.one = a.one | b.one;
    k.lo = std::max(a.lo, b.lo);
    k.hi = lowMask(std::max(requiredBits(a.hi), requiredBits(b.hi)));
    return k.normalized(bits);
}

KnownBits
kbXor(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    KnownBits k = KnownBits::top(bits);
    k.zero |= (a.zero & b.zero) | (a.one & b.one);
    k.one = (a.zero & b.one) | (a.one & b.zero);
    return k.normalized(bits);
}

KnownBits
kbShl(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    uint64_t mask = maskOf(bits);
    if (!b.isConstant() || b.lo >= bits)
        return KnownBits::top(bits);
    unsigned s = static_cast<unsigned>(b.lo);
    KnownBits k = KnownBits::top(bits);
    k.zero |= (a.zero << s) | (s > 0 ? lowMask(s) : 0);
    k.one = (a.one << s) & mask;
    if (a.hi <= (mask >> s)) {
        k.lo = a.lo << s;
        k.hi = a.hi << s;
    }
    return k.normalized(bits);
}

KnownBits
kbLShr(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    uint64_t mask = maskOf(bits);
    if (!b.isConstant() || b.lo >= bits) {
        // Any non-negative shift only shrinks the value.
        KnownBits k = KnownBits::top(bits);
        k.hi = a.hi;
        return k.normalized(bits);
    }
    unsigned s = static_cast<unsigned>(b.lo);
    KnownBits k;
    k.zero = (a.zero >> s) | ~(mask >> s);
    k.one = (a.one & mask) >> s;
    k.lo = a.lo >> s;
    k.hi = a.hi >> s;
    return k.normalized(bits);
}

KnownBits
kbAShr(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    // With a known-clear sign bit, arithmetic == logical shift.
    if (bits > 0 && (a.zero >> (bits - 1)) & 1)
        return kbLShr(a, b, bits);
    return KnownBits::top(bits);
}

KnownBits
kbTrunc(const KnownBits &a, unsigned bits)
{
    uint64_t mask = maskOf(bits);
    KnownBits k = KnownBits::top(bits);
    k.zero |= a.zero & mask;
    k.one = a.one & mask;
    if (a.hi <= mask) {
        k.lo = a.lo;
        k.hi = a.hi;
    }
    return k.normalized(bits);
}

KnownBits
kbZExt(const KnownBits &a, unsigned fromBits, unsigned bits)
{
    KnownBits k = a;
    k.zero |= ~maskOf(fromBits);
    return k.normalized(bits);
}

KnownBits
kbSExt(const KnownBits &a, unsigned fromBits, unsigned bits)
{
    uint64_t sign = 1ULL << (fromBits - 1);
    uint64_t ext = maskOf(bits) & ~maskOf(fromBits);
    if (a.zero & sign)
        return kbZExt(a, fromBits, bits);
    if (a.one & sign) {
        KnownBits k;
        k.zero = a.zero & maskOf(fromBits);
        k.one = (a.one & maskOf(fromBits)) | ext;
        k.lo = a.lo + ext;
        k.hi = a.hi + ext;
        return k.normalized(bits);
    }
    // Sign unknown: only the low fromBits-1 bits carry over.
    KnownBits k = KnownBits::top(bits);
    if (fromBits > 1) {
        uint64_t low = lowMask(fromBits - 1);
        k.zero |= a.zero & low;
        k.one = a.one & low;
    }
    return k.normalized(bits);
}

KnownBits
kbSpecAdd(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    if (bits >= 64)
        return kbAdd(a, b, bits); // Sums below could wrap the host word.
    uint64_t mask = maskOf(bits);
    KnownBits k = kbAdd(a, b, bits);
    // Table 1: on the non-misspeculating path there is no carry out,
    // so the result is the true sum, capped at the slice range.
    k.hi = std::min(k.hi, std::min(a.hi + b.hi, mask));
    k.lo = std::max(k.lo, std::min(a.lo + b.lo, k.hi));
    return k.normalized(bits);
}

KnownBits
kbSpecSub(const KnownBits &a, const KnownBits &b, unsigned bits)
{
    KnownBits k = kbSub(a, b, bits);
    // No borrow: the minuend bounds the result from above.
    uint64_t hi = a.hi >= b.lo ? a.hi - b.lo : 0;
    uint64_t lo = a.lo > b.hi ? a.lo - b.hi : 0;
    k.hi = std::min(k.hi, hi);
    k.lo = std::max(k.lo, std::min(lo, k.hi));
    return k.normalized(bits);
}

KnownBits
kbSpecTrunc(const KnownBits &a, unsigned bits)
{
    uint64_t mask = maskOf(bits);
    // Non-misspeculating path: the operand fits, so the result *is*
    // the operand value.
    KnownBits k;
    k.zero = a.zero;
    k.one = a.one & mask;
    k.lo = std::min(a.lo, mask);
    k.hi = std::min(a.hi, mask);
    return k.normalized(bits);
}

namespace
{

/** Range/mask-based compare fold: 1/0 when decided, -1 otherwise. */
int
foldCompare(CmpPred pred, const KnownBits &a, const KnownBits &b)
{
    bool disjoint = a.hi < b.lo || b.hi < a.lo;
    bool mask_conflict = (a.one & b.zero) || (b.one & a.zero);
    switch (pred) {
      case CmpPred::EQ:
        if (a.isConstant() && b.isConstant() && a.lo == b.lo)
            return 1;
        if (disjoint || mask_conflict)
            return 0;
        return -1;
      case CmpPred::NE:
        if (a.isConstant() && b.isConstant() && a.lo == b.lo)
            return 0;
        if (disjoint || mask_conflict)
            return 1;
        return -1;
      case CmpPred::ULT:
        if (a.hi < b.lo)
            return 1;
        if (a.lo >= b.hi)
            return 0;
        return -1;
      case CmpPred::ULE:
        if (a.hi <= b.lo)
            return 1;
        if (a.lo > b.hi)
            return 0;
        return -1;
      case CmpPred::UGT:
        if (a.lo > b.hi)
            return 1;
        if (a.hi <= b.lo)
            return 0;
        return -1;
      case CmpPred::UGE:
        if (a.lo >= b.hi)
            return 1;
        if (a.hi < b.lo)
            return 0;
        return -1;
      default:
        return -1; // Signed predicates: not modelled.
    }
}

} // namespace

KnownBitsAnalysis::KnownBitsAnalysis(Function &f)
{
    trace::Span span("analysis.known_bits", "compile");
    span.arg("function", f.name());
    std::vector<const Instruction *> order;
    for (BasicBlock *bb : reversePostOrder(f))
        for (const auto &inst : bb->insts())
            if (inst->type().isInt())
                order.push_back(inst.get());

    bool changed = true;
    unsigned iter = 0;
    for (; iter < kMaxIterations && changed; ++iter) {
        changed = false;
        for (const Instruction *inst : order) {
            KnownBits nf = transfer(inst);
            auto it = facts_.find(inst);
            if (it == facts_.end()) {
                facts_.emplace(inst, nf);
                updates_[inst] = 1;
                changed = true;
                continue;
            }
            if (nf == it->second)
                continue;
            if (++updates_[inst] > kWideningBudget) {
                // Widen: keep the (finite-lattice) masks, surrender
                // the interval to whatever the masks imply.
                nf.lo = 0;
                nf.hi = ~0ULL;
                nf = nf.normalized(inst->type().bits);
            }
            if (nf != it->second) {
                it->second = nf;
                changed = true;
            }
        }
    }
    if (changed) {
        // Safety net: not converged — fall back to type-top.
        for (const Instruction *inst : order)
            facts_[inst] = KnownBits::top(inst->type().bits);
    }
}

KnownBits
KnownBitsAnalysis::known(const Value *v) const
{
    unsigned bits = v->type().bits;
    if (v->isConstant())
        return KnownBits::constant(
            static_cast<const Constant *>(v)->value(), bits);
    if (v->isInstruction()) {
        auto it = facts_.find(static_cast<const Instruction *>(v));
        if (it != facts_.end())
            return it->second;
    }
    return KnownBits::top(bits);
}

KnownBits
KnownBitsAnalysis::transfer(const Instruction *inst) const
{
    unsigned bits = inst->type().bits;
    auto get = [&](size_t i) { return known(inst->operand(i)); };

    switch (inst->op()) {
      case Opcode::Add:
        return inst->isSpeculative() ? kbSpecAdd(get(0), get(1), bits)
                                     : kbAdd(get(0), get(1), bits);
      case Opcode::Sub:
        return inst->isSpeculative() ? kbSpecSub(get(0), get(1), bits)
                                     : kbSub(get(0), get(1), bits);
      case Opcode::Mul:
        return kbMul(get(0), get(1), bits);
      case Opcode::UDiv:
        return kbUDiv(get(0), get(1), bits);
      case Opcode::URem:
        return kbURem(get(0), get(1), bits);
      case Opcode::And:
        return kbAnd(get(0), get(1), bits);
      case Opcode::Or:
        return kbOr(get(0), get(1), bits);
      case Opcode::Xor:
        return kbXor(get(0), get(1), bits);
      case Opcode::Shl:
        return kbShl(get(0), get(1), bits);
      case Opcode::LShr:
        return kbLShr(get(0), get(1), bits);
      case Opcode::AShr:
        return kbAShr(get(0), get(1), bits);
      case Opcode::Trunc:
        return inst->isSpeculative() ? kbSpecTrunc(get(0), bits)
                                     : kbTrunc(get(0), bits);
      case Opcode::ZExt:
        return kbZExt(get(0), inst->operand(0)->type().bits, bits);
      case Opcode::SExt:
        return kbSExt(get(0), inst->operand(0)->type().bits, bits);
      case Opcode::ICmp: {
        int r = foldCompare(inst->pred(), get(0), get(1));
        return r < 0 ? KnownBits::top(1)
                     : KnownBits::constant(static_cast<uint64_t>(r), 1);
      }
      case Opcode::Select:
        return kbJoin(get(1), get(2), bits);
      case Opcode::Phi: {
        // Join over the incomings analyzed so far; back-edge inputs
        // missing a fact are skipped (optimistic iteration).
        bool any = false;
        KnownBits acc;
        for (size_t i = 0; i < inst->numOperands(); ++i) {
            const Value *v = inst->operand(i);
            if (v->isInstruction() &&
                !facts_.count(static_cast<const Instruction *>(v)))
                continue;
            KnownBits k = known(v);
            acc = any ? kbJoin(acc, k, bits) : k;
            any = true;
        }
        return any ? acc.normalized(bits) : KnownBits::top(bits);
      }
      default:
        // Loads, calls, and anything unmodelled: the type is the only
        // bound (a speculative i8 load is [0, 255] by type alone).
        return KnownBits::top(bits);
    }
}

} // namespace bitspec
