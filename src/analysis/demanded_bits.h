/**
 * @file
 * Demanded-bits analysis: the static bitwidth-selection baseline the
 * paper evaluates in §2.2 / Fig. 1c.
 *
 * A backward fixed-point computes, for each SSA value, the mask of
 * result bits that can affect any observable behaviour (stores, output,
 * calls, returns, branches, addresses). The "demanded width" of a value
 * is then the position of its highest demanded bit. Like LLVM's
 * implementation, the analysis is precise through masks, shifts by
 * constants, truncations and extensions, and conservative elsewhere —
 * which is exactly why it recovers nothing on rotate-heavy kernels such
 * as sha (paper §2.2).
 */

#ifndef BITSPEC_ANALYSIS_DEMANDED_BITS_H_
#define BITSPEC_ANALYSIS_DEMANDED_BITS_H_

#include <cstdint>
#include <map>

#include "ir/function.h"

namespace bitspec
{

/** Demanded-bit masks for every instruction of one function. */
class DemandedBits
{
  public:
    explicit DemandedBits(Function &f);

    /** Mask of demanded result bits; 0 means the value is dead. */
    uint64_t demandedMask(const Instruction *inst) const;

    /**
     * Bitwidth selection BW(v) = DemandedBits(v): the smallest width
     * covering all demanded bits (at least 1).
     */
    unsigned demandedWidth(const Instruction *inst) const;

  private:
    std::map<const Instruction *, uint64_t> masks_;
};

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_DEMANDED_BITS_H_
