#include "analysis/demanded_bits.h"

#include "support/bits.h"

namespace bitspec
{

namespace
{

/** Highest set bit position + 1 (0 for an empty mask). */
unsigned
maskWidth(uint64_t mask)
{
    return mask == 0 ? 0 : requiredBits(mask);
}

uint64_t
widthMask(Type t)
{
    return t.isVoid() ? 0 : lowMask(t.bits);
}

/**
 * Result bits @p inst can ever set. Demands are intersected with this
 * before being recorded: a bit the producer provably keeps at zero
 * need not be computed, so demanding it from the operands would only
 * inflate widths. This is what collapses the stored-rotate idiom —
 * `(x << k) | (x >> (w-k))` — where the funnel-shift halves each
 * cover a few constant positions, not the full width.
 */
uint64_t
possibleBits(const Instruction *inst)
{
    uint64_t w = widthMask(inst->type());
    auto const_val = [](const Value *v, uint64_t &out) {
        if (!v->isConstant())
            return false;
        out = static_cast<const Constant *>(v)->value();
        return true;
    };
    uint64_t k;
    switch (inst->op()) {
      case Opcode::Shl:
        if (const_val(inst->operand(1), k))
            return k >= 64 ? 0 : (w << k) & w;
        return w;
      case Opcode::LShr:
        if (const_val(inst->operand(1), k))
            return k >= 64 ? 0 : w >> k;
        return w;
      case Opcode::ZExt:
        return widthMask(inst->operand(0)->type());
      case Opcode::And: {
        uint64_t possible = w;
        for (const Value *v : inst->operands())
            if (const_val(v, k))
                possible &= k;
        return possible;
      }
      case Opcode::URem:
        // x % d < d: only bits below d's width can appear.
        if (const_val(inst->operand(1), k) && k >= 2)
            return w & lowMask(requiredBits(k - 1));
        return w;
      default:
        return w;
    }
}

} // namespace

DemandedBits::DemandedBits(Function &f)
{
    // Initialise all instruction demands to zero.
    std::vector<Instruction *> insts;
    for (const auto &bb : f.blocks())
        for (const auto &inst : bb->insts())
            insts.push_back(inst.get());

    auto demand = [&](Value *v, uint64_t bits) -> bool {
        if (!v->isInstruction())
            return false;
        auto *inst = static_cast<Instruction *>(v);
        bits &= widthMask(inst->type());
        bits &= possibleBits(inst);
        uint64_t &cur = masks_[inst];
        uint64_t merged = cur | bits;
        if (merged == cur)
            return false;
        cur = merged;
        return true;
    };

    // Roots: any use with observable behaviour demands the full width
    // of its operands.
    for (Instruction *inst : insts) {
        switch (inst->op()) {
          case Opcode::Store:
            demand(inst->operand(0), ~0ULL); // Address.
            demand(inst->operand(1),
                   widthMask(inst->operand(1)->type()));
            break;
          case Opcode::Output:
          case Opcode::Ret:
            for (Value *v : inst->operands())
                demand(v, widthMask(v->type()));
            break;
          case Opcode::Call:
            for (Value *v : inst->operands())
                demand(v, widthMask(v->type()));
            break;
          case Opcode::Load:
            demand(inst->operand(0), ~0ULL); // Address.
            break;
          case Opcode::CondBr:
            demand(inst->operand(0), 1);
            break;
          case Opcode::ICmp:
            // Comparisons observe every operand bit.
            demand(inst->operand(0), ~0ULL);
            demand(inst->operand(1), ~0ULL);
            break;
          default:
            break;
        }
    }

    // Backward propagation to a fixed point.
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
            Instruction *inst = *it;
            uint64_t d = masks_[inst] & widthMask(inst->type());
            if (d == 0)
                continue;
            unsigned h = maskWidth(d);
            switch (inst->op()) {
              case Opcode::Add:
              case Opcode::Sub:
                // Carries only travel upward: bits 0..h-1 suffice.
                changed |= demand(inst->operand(0), lowMask(h));
                changed |= demand(inst->operand(1), lowMask(h));
                break;
              case Opcode::Mul:
                changed |= demand(inst->operand(0), lowMask(h));
                changed |= demand(inst->operand(1), lowMask(h));
                break;
              case Opcode::And: {
                // A constant mask on one side caps the other side.
                for (int side = 0; side < 2; ++side) {
                    Value *op = inst->operand(side);
                    Value *other = inst->operand(1 - side);
                    uint64_t cap = ~0ULL;
                    if (other->isConstant())
                        cap = static_cast<Constant *>(other)->value();
                    changed |= demand(op, d & cap);
                }
                break;
              }
              case Opcode::Or:
              case Opcode::Xor:
                changed |= demand(inst->operand(0), d);
                changed |= demand(inst->operand(1), d);
                break;
              case Opcode::Shl: {
                Value *amt = inst->operand(1);
                if (amt->isConstant()) {
                    uint64_t k = static_cast<Constant *>(amt)->value();
                    changed |= demand(inst->operand(0),
                                      k >= 64 ? 0 : (d >> k));
                } else {
                    changed |= demand(inst->operand(0), ~0ULL);
                    changed |= demand(amt, ~0ULL);
                }
                break;
              }
              case Opcode::LShr:
              case Opcode::AShr: {
                Value *amt = inst->operand(1);
                if (amt->isConstant()) {
                    uint64_t k = static_cast<Constant *>(amt)->value();
                    uint64_t up = k >= 64 ? 0 : (d << k);
                    if (inst->op() == Opcode::AShr && d != 0) {
                        // The sign bit feeds every shifted-in position.
                        up |= 1ULL << (inst->type().bits - 1);
                    }
                    changed |= demand(inst->operand(0), up);
                } else {
                    changed |= demand(inst->operand(0), ~0ULL);
                    changed |= demand(amt, ~0ULL);
                }
                break;
              }
              case Opcode::UDiv:
              case Opcode::SDiv:
              case Opcode::URem:
              case Opcode::SRem:
                changed |= demand(inst->operand(0), ~0ULL);
                changed |= demand(inst->operand(1), ~0ULL);
                break;
              case Opcode::Trunc:
                changed |= demand(inst->operand(0), d);
                break;
              case Opcode::ZExt:
                changed |= demand(
                    inst->operand(0),
                    d & widthMask(inst->operand(0)->type()));
                break;
              case Opcode::SExt: {
                Type from = inst->operand(0)->type();
                uint64_t low = d & widthMask(from);
                if (d & ~widthMask(from))
                    low |= 1ULL << (from.bits - 1);
                changed |= demand(inst->operand(0), low);
                break;
              }
              case Opcode::Select:
                changed |= demand(inst->operand(0), 1);
                changed |= demand(inst->operand(1), d);
                changed |= demand(inst->operand(2), d);
                break;
              case Opcode::Phi:
                for (Value *v : inst->operands())
                    changed |= demand(v, d);
                break;
              default:
                // Results of loads/calls originate demand; their
                // operands were handled as roots.
                break;
            }
        }
    }
}

uint64_t
DemandedBits::demandedMask(const Instruction *inst) const
{
    auto it = masks_.find(inst);
    return it == masks_.end() ? 0 : it->second;
}

unsigned
DemandedBits::demandedWidth(const Instruction *inst) const
{
    uint64_t mask = demandedMask(inst);
    unsigned w = maskWidth(mask);
    return w == 0 ? 1 : w;
}

} // namespace bitspec
