#include "analysis/lint.h"

#include <algorithm>
#include <set>

#include "analysis/cfg.h"
#include "analysis/known_bits.h"
#include "analysis/taint.h"
#include "obs/trace.h"
#include "support/bits.h"

namespace bitspec
{

namespace
{

constexpr unsigned kSlice = 8; ///< Hardware slice width (Table 1).

std::string
boundsStr(const KnownBits &k)
{
    return "[" + std::to_string(k.lo) + "," + std::to_string(k.hi) +
           "]";
}

LintFinding
classify(const Instruction *inst, const KnownBitsAnalysis &kb,
         const std::string &where)
{
    LintFinding f;
    f.inst = inst;
    f.srcLine = inst->srcLine();
    const uint64_t cap = lowMask(kSlice);

    LintVerdict v = LintVerdict::Speculative;
    std::string why;
    switch (inst->op()) {
      case Opcode::Trunc: {
        KnownBits x = kb.known(inst->operand(0));
        if (x.hi <= cap) {
            v = LintVerdict::ProvenSafe;
            why = "operand bound " + boundsStr(x) + " fits the slice";
        } else if (x.lo > cap) {
            v = LintVerdict::ProvenUnsafe;
            why = "operand bound " + boundsStr(x) +
                  " always exceeds the slice";
        } else {
            why = "operand bound " + boundsStr(x) + " straddles " +
                  std::to_string(cap);
        }
        break;
      }
      case Opcode::Add: {
        KnownBits a = kb.known(inst->operand(0));
        KnownBits b = kb.known(inst->operand(1));
        if (a.hi + b.hi <= cap) {
            v = LintVerdict::ProvenSafe;
            why = "sum bound " + boundsStr(a) + "+" + boundsStr(b) +
                  " cannot carry out";
        } else if (a.lo + b.lo > cap) {
            v = LintVerdict::ProvenUnsafe;
            why = "sum bound " + boundsStr(a) + "+" + boundsStr(b) +
                  " always carries out";
        } else {
            why = "carry out depends on runtime values";
        }
        break;
      }
      case Opcode::Sub: {
        KnownBits a = kb.known(inst->operand(0));
        KnownBits b = kb.known(inst->operand(1));
        if (b.hi <= a.lo) {
            v = LintVerdict::ProvenSafe;
            why = "difference " + boundsStr(a) + "-" + boundsStr(b) +
                  " cannot borrow";
        } else if (a.hi < b.lo) {
            v = LintVerdict::ProvenUnsafe;
            why = "difference " + boundsStr(a) + "-" + boundsStr(b) +
                  " always borrows";
        } else {
            why = "borrow depends on runtime values";
        }
        break;
      }
      case Opcode::Load:
        why = "memory contents are statically unbounded";
        break;
      default:
        // Logic/moves have no misspeculating machine form; a stray
        // speculative flag there is still a check that never fires.
        v = LintVerdict::ProvenSafe;
        why = "operation has no misspeculating form";
        break;
    }

    f.verdict = v;
    f.message = where + ": speculative " +
                std::string(opcodeName(inst->op())) +
                (inst->name().empty() ? "" : " %" + inst->name()) +
                (f.srcLine > 0
                     ? " (line " + std::to_string(f.srcLine) + ")"
                     : "") +
                ": " + lintVerdictName(v) + " — " + why;
    return f;
}

} // namespace

const char *
lintVerdictName(LintVerdict v)
{
    switch (v) {
      case LintVerdict::ProvenSafe: return "proven-safe";
      case LintVerdict::ProvenUnsafe: return "proven-unsafe";
      case LintVerdict::Speculative: return "speculative";
      case LintVerdict::SpecLeak: return "spec-leak";
    }
    return "?";
}

LintReport
lintFunction(Function &f)
{
    LintReport report;
    KnownBitsAnalysis kb(f);
    std::set<const Instruction *> proven_safe;
    // Per-region running site index (checks in block order).
    std::map<int, int> siteOf;
    for (const auto &bb : f.blocks()) {
        const SpecRegion *sr = f.regionOf(bb.get());
        for (const auto &inst : bb->insts()) {
            if (inst->isSpeculative()) {
                LintFinding fd = classify(
                    inst.get(), kb, f.name() + ":" + bb->name());
                fd.regionId = sr != nullptr ? sr->id : -1;
                fd.siteIndex = siteOf[fd.regionId]++;
                switch (fd.verdict) {
                  case LintVerdict::ProvenSafe:
                    ++report.provenSafe;
                    proven_safe.insert(inst.get());
                    break;
                  case LintVerdict::ProvenUnsafe:
                    ++report.provenUnsafe;
                    break;
                  case LintVerdict::Speculative:
                    ++report.speculative;
                    break;
                  case LintVerdict::SpecLeak:
                    break; // classify never returns SpecLeak.
                }
                report.findings.push_back(std::move(fd));
            } else if (inst->type().bits == kSlice) {
                ++report.exactSlices;
            }
        }
    }

    // Refresh the squeezer-emitted region check lists so downstream
    // consumers (applyLintVerdicts, attribution) see the live set —
    // hand-built fixtures get theirs populated here.
    for (auto &sr : f.specRegionsMut()) {
        sr->checks.clear();
        for (const BasicBlock *bb : sr->blocks)
            for (const auto &inst : bb->insts())
                if (inst->isSpeculative())
                    sr->checks.push_back(inst.get());
    }

    // Non-interference sweep: transient values must not reach
    // handler-visible state inside the region window (taint.h).
    TaintReport taint = taintFunction(f, kb, proven_safe);
    report.leaksDischarged += taint.dischargedSites;
    for (const RegionTaintResult &rr : taint.regions) {
        for (const TaintSink &s : rr.sinks) {
            if (s.discharged)
                continue;
            LintFinding fd;
            fd.inst = s.inst;
            fd.verdict = LintVerdict::SpecLeak;
            fd.srcLine = s.srcLine;
            fd.regionId = s.regionId;
            fd.siteIndex = s.siteIndex;
            fd.message =
                f.name() + ": region " + std::to_string(s.regionId) +
                ": " + taintSinkKindName(s.kind) + " sink " +
                std::string(opcodeName(s.inst->op())) +
                (s.srcLine > 0
                     ? " (line " + std::to_string(s.srcLine) + ")"
                     : "") +
                ": spec-leak — " + s.why;
            ++report.specLeaks;
            report.findings.push_back(std::move(fd));
        }
    }

    // Deterministic report order: (region, check-vs-leak, site).
    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const LintFinding &a, const LintFinding &b) {
                         if (a.regionId != b.regionId)
                             return a.regionId < b.regionId;
                         bool la = a.verdict == LintVerdict::SpecLeak;
                         bool lb = b.verdict == LintVerdict::SpecLeak;
                         if (la != lb)
                             return lb;
                         return a.siteIndex < b.siteIndex;
                     });
    return report;
}

LintReport
lintModule(Module &m)
{
    trace::Span span("analysis.lint", "compile");
    LintReport report;
    for (const auto &f : m.functions())
        report += lintFunction(*f);
    span.arg("proven_safe", std::to_string(report.provenSafe));
    span.arg("proven_unsafe", std::to_string(report.provenUnsafe));
    span.arg("speculative", std::to_string(report.speculative));
    span.arg("spec_leaks", std::to_string(report.specLeaks));
    span.arg("leaks_discharged",
             std::to_string(report.leaksDischarged));
    return report;
}

LintElisionStats
applyLintVerdicts(Function &f, const LintReport &report)
{
    LintElisionStats st;
    for (const LintFinding &fd : report.findings) {
        if (fd.verdict != LintVerdict::ProvenSafe)
            continue;
        auto *inst = const_cast<Instruction *>(fd.inst);
        if (!inst->isSpeculative() || inst->parent()->parent() != &f)
            continue;
        // Loads never classify safe; everything else has an exact
        // 8-bit form with identical non-misspeculating semantics.
        inst->setSpeculative(false);
        inst->setSpecOrigBits(0);
        ++st.checksDropped;
        // Keep the region's check-list metadata in sync: the site no
        // longer carries a check (and may be DCE'd outright).
        if (SpecRegion *sr = f.regionOf(inst->parent()))
            std::erase(sr->checks, inst);
    }
    if (st.checksDropped == 0)
        return st;

    // A region whose last check disappeared protects nothing: delete
    // it so its handler (and the CFG_orig tail behind it) dies with
    // the next unreachable-block sweep.
    auto &regions = f.specRegionsMut();
    std::erase_if(regions, [&](const std::unique_ptr<SpecRegion> &sr) {
        for (BasicBlock *bb : sr->blocks)
            for (const auto &inst : bb->insts())
                if (inst->isSpeculative())
                    return false;
        ++st.regionsRemoved;
        return true;
    });
    if (st.regionsRemoved > 0)
        removeUnreachableBlocks(f);
    return st;
}

} // namespace bitspec
