#include "analysis/lint.h"

#include "analysis/cfg.h"
#include "analysis/known_bits.h"
#include "obs/trace.h"
#include "support/bits.h"

namespace bitspec
{

namespace
{

constexpr unsigned kSlice = 8; ///< Hardware slice width (Table 1).

std::string
boundsStr(const KnownBits &k)
{
    return "[" + std::to_string(k.lo) + "," + std::to_string(k.hi) +
           "]";
}

LintFinding
classify(const Instruction *inst, const KnownBitsAnalysis &kb,
         const std::string &where)
{
    LintFinding f;
    f.inst = inst;
    f.srcLine = inst->srcLine();
    const uint64_t cap = lowMask(kSlice);

    LintVerdict v = LintVerdict::Speculative;
    std::string why;
    switch (inst->op()) {
      case Opcode::Trunc: {
        KnownBits x = kb.known(inst->operand(0));
        if (x.hi <= cap) {
            v = LintVerdict::ProvenSafe;
            why = "operand bound " + boundsStr(x) + " fits the slice";
        } else if (x.lo > cap) {
            v = LintVerdict::ProvenUnsafe;
            why = "operand bound " + boundsStr(x) +
                  " always exceeds the slice";
        } else {
            why = "operand bound " + boundsStr(x) + " straddles " +
                  std::to_string(cap);
        }
        break;
      }
      case Opcode::Add: {
        KnownBits a = kb.known(inst->operand(0));
        KnownBits b = kb.known(inst->operand(1));
        if (a.hi + b.hi <= cap) {
            v = LintVerdict::ProvenSafe;
            why = "sum bound " + boundsStr(a) + "+" + boundsStr(b) +
                  " cannot carry out";
        } else if (a.lo + b.lo > cap) {
            v = LintVerdict::ProvenUnsafe;
            why = "sum bound " + boundsStr(a) + "+" + boundsStr(b) +
                  " always carries out";
        } else {
            why = "carry out depends on runtime values";
        }
        break;
      }
      case Opcode::Sub: {
        KnownBits a = kb.known(inst->operand(0));
        KnownBits b = kb.known(inst->operand(1));
        if (b.hi <= a.lo) {
            v = LintVerdict::ProvenSafe;
            why = "difference " + boundsStr(a) + "-" + boundsStr(b) +
                  " cannot borrow";
        } else if (a.hi < b.lo) {
            v = LintVerdict::ProvenUnsafe;
            why = "difference " + boundsStr(a) + "-" + boundsStr(b) +
                  " always borrows";
        } else {
            why = "borrow depends on runtime values";
        }
        break;
      }
      case Opcode::Load:
        why = "memory contents are statically unbounded";
        break;
      default:
        // Logic/moves have no misspeculating machine form; a stray
        // speculative flag there is still a check that never fires.
        v = LintVerdict::ProvenSafe;
        why = "operation has no misspeculating form";
        break;
    }

    f.verdict = v;
    f.message = where + ": speculative " +
                std::string(opcodeName(inst->op())) +
                (inst->name().empty() ? "" : " %" + inst->name()) +
                (f.srcLine > 0
                     ? " (line " + std::to_string(f.srcLine) + ")"
                     : "") +
                ": " + lintVerdictName(v) + " — " + why;
    return f;
}

} // namespace

const char *
lintVerdictName(LintVerdict v)
{
    switch (v) {
      case LintVerdict::ProvenSafe: return "proven-safe";
      case LintVerdict::ProvenUnsafe: return "proven-unsafe";
      case LintVerdict::Speculative: return "speculative";
    }
    return "?";
}

LintReport
lintFunction(Function &f)
{
    LintReport report;
    KnownBitsAnalysis kb(f);
    for (const auto &bb : f.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->isSpeculative()) {
                LintFinding fd = classify(
                    inst.get(), kb, f.name() + ":" + bb->name());
                switch (fd.verdict) {
                  case LintVerdict::ProvenSafe:
                    ++report.provenSafe;
                    break;
                  case LintVerdict::ProvenUnsafe:
                    ++report.provenUnsafe;
                    break;
                  case LintVerdict::Speculative:
                    ++report.speculative;
                    break;
                }
                report.findings.push_back(std::move(fd));
            } else if (inst->type().bits == kSlice) {
                ++report.exactSlices;
            }
        }
    }
    return report;
}

LintReport
lintModule(Module &m)
{
    trace::Span span("analysis.lint", "compile");
    LintReport report;
    for (const auto &f : m.functions())
        report += lintFunction(*f);
    span.arg("proven_safe", std::to_string(report.provenSafe));
    span.arg("proven_unsafe", std::to_string(report.provenUnsafe));
    span.arg("speculative", std::to_string(report.speculative));
    return report;
}

LintElisionStats
applyLintVerdicts(Function &f, const LintReport &report)
{
    LintElisionStats st;
    for (const LintFinding &fd : report.findings) {
        if (fd.verdict != LintVerdict::ProvenSafe)
            continue;
        auto *inst = const_cast<Instruction *>(fd.inst);
        if (!inst->isSpeculative() || inst->parent()->parent() != &f)
            continue;
        // Loads never classify safe; everything else has an exact
        // 8-bit form with identical non-misspeculating semantics.
        inst->setSpeculative(false);
        inst->setSpecOrigBits(0);
        ++st.checksDropped;
    }
    if (st.checksDropped == 0)
        return st;

    // A region whose last check disappeared protects nothing: delete
    // it so its handler (and the CFG_orig tail behind it) dies with
    // the next unreachable-block sweep.
    auto &regions = f.specRegionsMut();
    std::erase_if(regions, [&](const std::unique_ptr<SpecRegion> &sr) {
        for (BasicBlock *bb : sr->blocks)
            for (const auto &inst : bb->insts())
                if (inst->isSpeculative())
                    return false;
        ++st.regionsRemoved;
        return true;
    });
    if (st.regionsRemoved > 0)
        removeUnreachableBlocks(f);
    return st;
}

} // namespace bitspec
