/**
 * @file
 * IR verifier: structural SSA rules plus the Speculative IR rules of
 * paper §3.1.1 and the Theorem 3.1 deadness guarantee.
 */

#ifndef BITSPEC_ANALYSIS_VERIFIER_H_
#define BITSPEC_ANALYSIS_VERIFIER_H_

#include <string>
#include <vector>

#include "ir/module.h"

namespace bitspec
{

/**
 * Verify @p f; returns human-readable problems (empty means valid).
 *
 * Checks: terminator placement, phi placement and incoming-edge
 * completeness, operand typing, SSA dominance, and when the function has
 * speculative regions: handlers are not members, not branch targets, are
 * unique per region, and no value defined inside a region is used by its
 * handler (Theorem 3.1).
 */
std::vector<std::string> verifyFunction(Function &f);

/** Verify every function of @p m. */
std::vector<std::string> verifyModule(Module &m);

/** Panic with a diagnostic if @p m fails verification. */
void verifyOrDie(Module &m, const std::string &when);

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_VERIFIER_H_
