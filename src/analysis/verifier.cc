#include "analysis/verifier.h"

#include <algorithm>
#include <set>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "ir/printer.h"
#include "support/error.h"

namespace bitspec
{

namespace
{

void
checkTypes(const Instruction &inst, std::vector<std::string> &problems)
{
    auto bad = [&](const std::string &msg) {
        problems.push_back(inst.parent()->name() + ": " + msg);
    };

    switch (inst.op()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::UDiv: case Opcode::SDiv: case Opcode::URem:
      case Opcode::SRem: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::Shl: case Opcode::LShr:
      case Opcode::AShr:
        if (inst.numOperands() != 2 ||
            inst.operand(0)->type() != inst.type() ||
            inst.operand(1)->type() != inst.type()) {
            bad("binary op operand/result type mismatch");
        }
        break;
      case Opcode::ICmp:
        if (inst.numOperands() != 2 ||
            inst.operand(0)->type() != inst.operand(1)->type() ||
            !inst.type().isBool()) {
            bad("icmp typing violation");
        }
        break;
      case Opcode::ZExt: case Opcode::SExt:
        if (inst.numOperands() != 1 ||
            inst.operand(0)->type().bits >= inst.type().bits) {
            bad("extension must widen");
        }
        break;
      case Opcode::Trunc:
        if (inst.numOperands() != 1 ||
            inst.operand(0)->type().bits <= inst.type().bits) {
            bad("trunc must narrow");
        }
        break;
      case Opcode::Load:
        if (inst.numOperands() != 1 ||
            inst.operand(0)->type() != Type::i32()) {
            bad("load address must be i32");
        }
        break;
      case Opcode::Store:
        if (inst.numOperands() != 2 ||
            inst.operand(0)->type() != Type::i32()) {
            bad("store address must be i32");
        }
        break;
      case Opcode::CondBr:
        if (inst.numOperands() != 1 || !inst.operand(0)->type().isBool())
            bad("condbr condition must be i1");
        break;
      case Opcode::Select:
        if (inst.numOperands() != 3 ||
            !inst.operand(0)->type().isBool() ||
            inst.operand(1)->type() != inst.type() ||
            inst.operand(2)->type() != inst.type()) {
            bad("select typing violation");
        }
        break;
      case Opcode::Phi:
        for (Value *v : inst.operands())
            if (v->type() != inst.type())
                bad("phi input type mismatch");
        break;
      case Opcode::Call:
        if (!inst.callee())
            bad("call without callee");
        break;
      default:
        break;
    }
}

} // namespace

std::vector<std::string>
verifyFunction(Function &f)
{
    std::vector<std::string> problems;
    auto bad = [&](const std::string &msg) {
        problems.push_back(f.name() + ": " + msg);
    };

    if (f.blocks().empty()) {
        bad("function has no blocks");
        return problems;
    }

    // Terminators and phi placement.
    for (const auto &bb : f.blocks()) {
        if (!bb->hasTerminator()) {
            bad("block " + bb->name() + " lacks a terminator");
            return problems;
        }
        bool seen_nonphi = false;
        size_t idx = 0;
        for (const auto &inst : bb->insts()) {
            bool last = (++idx == bb->insts().size());
            if (inst->isTerm() && !last)
                bad("terminator mid-block in " + bb->name());
            if (inst->isPhi() && seen_nonphi)
                bad("phi after non-phi in " + bb->name());
            if (!inst->isPhi())
                seen_nonphi = true;
            checkTypes(*inst, problems);
        }
    }

    // Phi incoming edges must match predecessors exactly.
    auto preds = f.predecessors();
    for (const auto &bb : f.blocks()) {
        std::set<BasicBlock *> pred_set(preds[bb.get()].begin(),
                                        preds[bb.get()].end());
        for (Instruction *phi : bb->phis()) {
            std::set<BasicBlock *> incoming(phi->blockOperands().begin(),
                                            phi->blockOperands().end());
            if (!pred_set.empty() && incoming != pred_set) {
                bad("phi incoming set mismatch in " + bb->name());
            }
        }
    }

    // SSA dominance for reachable code.
    DomTree dt(f);
    for (const auto &bb : f.blocks()) {
        if (!dt.isReachable(bb.get()))
            continue;
        for (const auto &inst : bb->insts()) {
            for (size_t i = 0; i < inst->numOperands(); ++i) {
                Value *op = inst->operand(i);
                if (!op->isInstruction())
                    continue;
                auto *def = static_cast<Instruction *>(op);
                if (!dt.isReachable(def->parent()))
                    continue;
                if (!dt.dominatesUse(def, inst.get(), i)) {
                    bad("use before def of %" + def->name() + " in " +
                        bb->name());
                }
            }
        }
    }

    // Speculative-region rules (paper §3.1.1).
    std::set<BasicBlock *> in_region;
    std::set<BasicBlock *> handlers;
    for (const auto &sr : f.specRegions()) {
        if (!sr->handler) {
            bad("region without handler");
            continue;
        }
        if (!handlers.insert(sr->handler).second)
            bad("block is handler of two regions: " + sr->handler->name());
        for (BasicBlock *member : sr->blocks) {
            if (!in_region.insert(member).second)
                bad("block in two regions: " + member->name());
            if (member == sr->handler)
                bad("handler inside its region: " + member->name());
        }
    }
    for (BasicBlock *h : handlers) {
        if (in_region.count(h))
            bad("handler is member of a region: " + h->name());
        // Handlers are entered by misspeculation only: never a branch
        // target, never the function entry (which the caller enters).
        if (!f.blocks().empty() && h == f.entry())
            bad("handler is the function entry: " + h->name());
        for (const auto &bb : f.blocks())
            for (BasicBlock *succ : bb->successors())
                if (succ == h)
                    bad("handler is a branch target: " + h->name());
    }

    // Every speculative instruction needs a region (and with it a
    // handler) to redirect to; a stray flag outside any region would
    // misspeculate into nowhere.
    for (const auto &bb : f.blocks()) {
        if (in_region.count(bb.get()))
            continue;
        for (const auto &inst : bb->insts())
            if (inst->isSpeculative())
                bad("speculative instruction outside any region in " +
                    bb->name());
    }

    // Theorem 3.1: values defined in a region are dead at its handler.
    for (const auto &sr : f.specRegions()) {
        std::set<const Value *> defined;
        for (BasicBlock *member : sr->blocks)
            for (const auto &inst : member->insts())
                if (!inst->type().isVoid())
                    defined.insert(inst.get());
        for (const auto &inst : sr->handler->insts()) {
            for (Value *op : inst->operands()) {
                if (defined.count(op)) {
                    bad("handler " + sr->handler->name() +
                        " uses region-defined value (Theorem 3.1)");
                }
            }
        }
    }

    return problems;
}

std::vector<std::string>
verifyModule(Module &m)
{
    std::vector<std::string> problems;
    for (const auto &f : m.functions()) {
        auto p = verifyFunction(*f);
        problems.insert(problems.end(), p.begin(), p.end());
    }
    return problems;
}

void
verifyOrDie(Module &m, const std::string &when)
{
    auto problems = verifyModule(m);
    if (problems.empty())
        return;
    std::string msg = "IR verification failed " + when + ":\n";
    for (const auto &p : problems)
        msg += "  " + p + "\n";
    panic(msg);
}

} // namespace bitspec
