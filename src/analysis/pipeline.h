/**
 * @file
 * Pass-pipeline instrumentation: optional verify + lint checkpoints
 * between compilation stages.
 *
 * When the BITSPEC_VERIFY_EACH environment variable is set (non-empty,
 * not "0"), every pipelineCheckpoint() call re-verifies the module and
 * lints speculative sites, printing proven-unsafe diagnostics to
 * stderr. When unset the checkpoints are (nearly) free, so they are
 * left compiled-in on every pipeline stage.
 */

#ifndef BITSPEC_ANALYSIS_PIPELINE_H_
#define BITSPEC_ANALYSIS_PIPELINE_H_

#include "ir/module.h"

namespace bitspec
{

/**
 * True when per-stage verification is on: either forced by
 * setPipelineVerifyForced() or requested via BITSPEC_VERIFY_EACH.
 */
bool pipelineVerifyEnabled();

/**
 * Test hook overriding the environment: 1 = force on, 0 = force off,
 * -1 = defer to BITSPEC_VERIFY_EACH again.
 */
void setPipelineVerifyForced(int forced);

/**
 * Checkpoint after the pipeline stage named @p stage: verifyOrDie()
 * plus a lint sweep whose proven-unsafe findings go to stderr. No-op
 * unless pipelineVerifyEnabled().
 */
void pipelineCheckpoint(Module &m, const char *stage);

/** Per-function variant (used inside the squeezer's sub-stages). */
void pipelineCheckpoint(Function &f, const char *stage);

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_PIPELINE_H_
