/**
 * @file
 * Speculative non-interference taint analysis (the SpecLeak lint).
 *
 * Threat model (see DESIGN.md "Speculative non-interference"): the
 * repo's reference semantics resolve every bitwidth check at the
 * checking instruction itself, but the hardware the paper targets is
 * free to *defer* check resolution to the region exit — inside that
 * window the consumers of a speculative result observe the wrapped
 * narrow value (the committed value's low slice) instead of the value
 * the handler will later repair. The lint proves, region by region,
 * that nothing observable on such a transiently-wrong path can reveal
 * more than the committed execution does.
 *
 * Lattice:  Clean < Transient < Secret.
 *  - Clean: defined outside the region window, or derived only from
 *    clean values; equal on the transient and committed paths.
 *  - Transient: derived from a speculative result. Its transient
 *    value differs from the committed one, but is a pure function of
 *    committed state (every speculative form wraps to the low slice),
 *    so observing it reveals nothing new. First-order wrapped-address
 *    loads are therefore accepted-by-design — they are the paper's
 *    whole mechanism.
 *  - Secret: loaded from memory at a Transient (or Secret) address —
 *    contents the committed execution never reads. Observing a Secret
 *    breaks non-interference.
 *
 * The window follows the late-retire reading of an out-of-order
 * BitSpec implementation: a check's wrapped result is forwarded
 * eagerly to dependents, but the squash-and-redirect commits only
 * when the check retires. Memory accesses issued in between perturb
 * cache state observably even though they never architecturally
 * commit (data stores drain from the store queue only at retire, so
 * a squashed store's *data* is never visible — but the line fill its
 * *address* triggers is).
 *
 * Handler-visible sinks inside the window:
 *  - A load whose address is Secret-tainted: the classic two-access
 *    gadget — the cache set touched encodes the secret.
 *  - A store whose address is Secret-tainted: the store's data is
 *    squashed with the window, but its write-allocate line fill
 *    encodes the secret exactly like a load's.
 *  - An Output with a tainted operand (excluded from regions by
 *    Eq. 5; checked anyway as defence in depth).
 *
 * Obligations are discharged with known-bits facts:
 *  - D1 constant address (lo == hi): the access provably touches one
 *    fixed location; nothing is encoded.
 *  - D2 same cache line (lo/64 == hi/64): the observable cache state
 *    is independent of the tainted value.
 *  - D3 proven-safe roots: a speculative site the lint proved can
 *    never fire has no misspeculating path; it seeds no taint.
 *  - D4 in-array transient read: a Transient-address load whose whole
 *    address range provably stays inside one global reads data the
 *    program owns and traverses; its result is downgraded to
 *    Transient (declassified), not Secret. Out-of-bounds-capable
 *    reads stay Secret — exactly Spectre-v1 bounds reasoning.
 *  - D5 transient-address store: a store whose address taint is only
 *    Transient perturbs the cache as a function of committed state
 *    (the wrap), reveals nothing new, and its data never commits —
 *    the same accepted-by-design status as first-order wrapped
 *    loads. Only Secret-address stores are leaks.
 */

#ifndef BITSPEC_ANALYSIS_TAINT_H_
#define BITSPEC_ANALYSIS_TAINT_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/known_bits.h"
#include "ir/module.h"

namespace bitspec
{

/** Region-window taint lattice; ordered (join = max). */
enum class Taint : uint8_t
{
    Clean = 0,     ///< Committed-path value.
    Transient = 1, ///< Wrapped speculative value (committed-derivable).
    Secret = 2,    ///< Memory the committed path never reads.
};

const char *taintName(Taint t);

/** Lattice join. */
inline Taint
taintJoin(Taint a, Taint b)
{
    return a > b ? a : b;
}

/**
 * Pure dataflow transfer for a non-root instruction: the result taint
 * of @p op given its operand taints (address-first for Load). Exposed
 * for golden unit tests, mirroring the kb* transfer functions.
 *
 * Load is the only taint-*raising* op: reading memory at a tainted
 * address yields a Secret (the window has no store-to-load forwarding
 * to track — Eq. 4 regions never mix loads and stores). Everything
 * else joins its operand taints.
 */
Taint taintTransfer(Opcode op, const std::vector<Taint> &operands);

/** Why a tainted sink was (or was not) discharged. */
enum class TaintSinkKind
{
    StoreAddr,  ///< Store at a tainted address (line-fill channel).
    SecretLoad, ///< Load at a Secret address (two-access gadget).
    TaintedOut, ///< Output of a tainted value (defence in depth).
};

const char *taintSinkKindName(TaintSinkKind k);

/** One handler-visible sink a tainted value reached. */
struct TaintSink
{
    const Instruction *inst = nullptr;
    TaintSinkKind kind = TaintSinkKind::StoreAddr;
    Taint taint = Taint::Clean; ///< Taint of the offending operand.
    int regionId = -1;
    /** Position of the sink among the region's sinks, in block
     *  instruction order (stable snapshot/sort key). */
    int siteIndex = 0;
    int srcLine = 0;
    bool discharged = false; ///< Proven harmless (D1/D2/D5).
    std::string why;         ///< Diagnostic (obligation or discharge).
};

/** Taint sweep result for one speculative region. */
struct RegionTaintResult
{
    const SpecRegion *region = nullptr;
    int regionId = -1;
    unsigned transientDefs = 0; ///< Values tainted Transient.
    unsigned secretDefs = 0;    ///< Values tainted Secret.
    unsigned leaks = 0;         ///< Undischarged sinks.
    unsigned discharged = 0;    ///< Sinks proven harmless.
    std::vector<TaintSink> sinks;
};

/** Function-level report. */
struct TaintReport
{
    std::vector<RegionTaintResult> regions;
    unsigned leakSites = 0;
    unsigned dischargedSites = 0;
    unsigned transientDefs = 0;
    unsigned secretDefs = 0;

    TaintReport &
    operator+=(const TaintReport &o)
    {
        regions.insert(regions.end(), o.regions.begin(),
                       o.regions.end());
        leakSites += o.leakSites;
        dischargedSites += o.dischargedSites;
        transientDefs += o.transientDefs;
        secretDefs += o.secretDefs;
        return *this;
    }
};

/**
 * Sweep every speculative region of @p f. @p kb must have been
 * computed on the current shape of @p f. Roots are the region's
 * speculative instructions minus any in @p proven_safe (D3 — pass the
 * lint's ProvenSafe set, or empty to treat every check as live).
 *
 * Also writes the per-region tallies back into SpecRegion::leakSites
 * / leaksDischarged, the metadata the backend threads into MIR for
 * per-region leak attribution.
 */
TaintReport taintFunction(Function &f, const KnownBitsAnalysis &kb,
                          const std::set<const Instruction *>
                              &proven_safe = {});

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_TAINT_H_
