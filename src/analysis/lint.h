/**
 * @file
 * Speculative-safety lint: classifies every squeezed slice.
 *
 * The squeezer narrows on profile evidence alone; the lint pass runs
 * the known-bits analysis over the squeezed function and sorts each
 * speculative site into one of three verdicts:
 *
 *  - ProvenSafe: the static bound shows the check can never fire
 *    (e.g. a speculative truncate whose operand provably fits the
 *    slice, or a speculative add whose operand bounds cannot carry
 *    out). The check — and with it the skeleton slot and possibly the
 *    whole region — is pure overhead; applyLintVerdicts() drops it.
 *  - ProvenUnsafe: the site *always* misspeculates (the static lower
 *    bound exceeds the slice). Executing it is correct but useless —
 *    every entry pays the misspeculation recovery. Reported as a
 *    diagnostic with the source location so the squeeze can be
 *    suppressed.
 *  - Speculative: the paper's intended case — the profile says the
 *    value fits, static analysis cannot prove it either way.
 *
 * Non-speculative slice instructions (exact narrowing, bitmask
 * elision) carry no check by construction and are counted as
 * exactSlices.
 */

#ifndef BITSPEC_ANALYSIS_LINT_H_
#define BITSPEC_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "ir/module.h"

namespace bitspec
{

enum class LintVerdict
{
    ProvenSafe,   ///< Check can never fire; droppable.
    ProvenUnsafe, ///< Check always fires; the squeeze is useless.
    Speculative,  ///< Statically undecided (paper behaviour).
    /** A transient value reaches handler-visible state on the
     *  misspeculating path before the check commits (speculative
     *  non-interference violation — see analysis/taint.h). Anchored
     *  at the sink, not the check. */
    SpecLeak,
};

const char *lintVerdictName(LintVerdict v);

/** One classified speculative site (or, for SpecLeak, sink). */
struct LintFinding
{
    const Instruction *inst = nullptr;
    LintVerdict verdict = LintVerdict::Speculative;
    int srcLine = 0;     ///< 1-based source line; 0 = synthesized.
    /** SpecRegion id of the site's block; -1 outside any region. */
    int regionId = -1;
    /** Order of the site within its region (block instruction order
     *  for checks, sink order for leaks). Findings are sorted by
     *  (function, regionId, verdict-class, siteIndex), so reports
     *  and snapshots never depend on container iteration order. */
    int siteIndex = 0;
    std::string message; ///< Human-readable diagnostic.
};

/** Lint result over a function or module. */
struct LintReport
{
    std::vector<LintFinding> findings; ///< One per site/sink.
    unsigned provenSafe = 0;
    unsigned provenUnsafe = 0;
    unsigned speculative = 0;
    /** Slice-typed defs with no check (exact narrowing / source i8). */
    unsigned exactSlices = 0;
    /** Undischarged speculative non-interference sinks (SpecLeak
     *  findings); zero on every shipped workload — ctest-enforced by
     *  tests/analysis/lint_selfcheck_test.cc. */
    unsigned specLeaks = 0;
    /** Tainted sinks discharged with known-bits facts (D1/D2); these
     *  produce no finding, only the tally. */
    unsigned leaksDischarged = 0;

    LintReport &
    operator+=(const LintReport &o)
    {
        findings.insert(findings.end(), o.findings.begin(),
                        o.findings.end());
        provenSafe += o.provenSafe;
        provenUnsafe += o.provenUnsafe;
        speculative += o.speculative;
        exactSlices += o.exactSlices;
        specLeaks += o.specLeaks;
        leaksDischarged += o.leaksDischarged;
        return *this;
    }
};

/** Classify every speculative site of @p f. */
LintReport lintFunction(Function &f);

/** Classify every speculative site of @p m. */
LintReport lintModule(Module &m);

/** What applyLintVerdicts changed. */
struct LintElisionStats
{
    unsigned checksDropped = 0;  ///< Spec flags cleared (proven safe).
    unsigned regionsRemoved = 0; ///< Regions left with no check.
};

/**
 * Drop the checks of every ProvenSafe finding: the speculative flag is
 * cleared (the op becomes its exact 8-bit form), and regions whose
 * last speculative instruction disappeared are deleted together with
 * their handlers — which makes the handler, and usually the whole
 * CFG_orig tail behind it, unreachable. The caller is expected to run
 * its usual cleanup (unreachable-block removal is done here; phi
 * simplification and DCE belong to the transform layer).
 */
LintElisionStats applyLintVerdicts(Function &f,
                                   const LintReport &report);

} // namespace bitspec

#endif // BITSPEC_ANALYSIS_LINT_H_
