#include "analysis/taint.h"

#include <map>

#include "obs/trace.h"
#include "support/bits.h"

namespace bitspec
{

namespace
{

constexpr uint64_t kCacheLine = 64; ///< L1D line (uarch/cache.h).

std::string
boundsStr(const KnownBits &k)
{
    return "[" + std::to_string(k.lo) + "," + std::to_string(k.hi) +
           "]";
}

/** D4: the whole address range provably stays inside one global —
 *  the transient read cannot escape data the program owns. */
bool
staysInOneGlobal(const KnownBits &addr, const Module *m)
{
    if (m == nullptr || addr.hi == ~0ULL)
        return false;
    for (const auto &g : m->globals()) {
        uint64_t base = g->address();
        if (base == 0)
            continue; // Globals not laid out yet.
        if (addr.lo >= base && addr.hi < base + g->sizeBytes())
            return true;
    }
    return false;
}

} // namespace

const char *
taintName(Taint t)
{
    switch (t) {
      case Taint::Clean: return "clean";
      case Taint::Transient: return "transient";
      case Taint::Secret: return "secret";
    }
    return "?";
}

const char *
taintSinkKindName(TaintSinkKind k)
{
    switch (k) {
      case TaintSinkKind::StoreAddr: return "store-addr";
      case TaintSinkKind::SecretLoad: return "secret-load";
      case TaintSinkKind::TaintedOut: return "tainted-output";
    }
    return "?";
}

Taint
taintTransfer(Opcode op, const std::vector<Taint> &operands)
{
    switch (op) {
      case Opcode::Load:
        // Reading memory at a tainted address yields contents the
        // committed path never reads. The caller applies the D4
        // in-array downgrade; the pure transfer is maximally cautious.
        return !operands.empty() && operands[0] != Taint::Clean
                   ? Taint::Secret
                   : Taint::Clean;
      case Opcode::Store:
      case Opcode::Output:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
      case Opcode::Unreachable:
        return Taint::Clean; // No result value.
      default: {
        Taint t = Taint::Clean;
        for (Taint o : operands)
            t = taintJoin(t, o);
        return t;
      }
    }
}

TaintReport
taintFunction(Function &f, const KnownBitsAnalysis &kb,
              const std::set<const Instruction *> &proven_safe)
{
    TaintReport report;
    const Module *m = f.parent();

    for (auto &sr : f.specRegionsMut()) {
        RegionTaintResult r;
        r.region = sr.get();
        r.regionId = sr->id;

        // Window-local taint environment. Anything not in the map
        // (arguments, constants, values defined before the region
        // entry) is committed state: Clean.
        std::map<const Value *, Taint> env;
        auto taintOf = [&](const Value *v) {
            auto it = env.find(v);
            return it == env.end() ? Taint::Clean : it->second;
        };

        auto addSink = [&](const Instruction *inst, TaintSinkKind kind,
                           Taint t, bool discharged, std::string why) {
            TaintSink s;
            s.inst = inst;
            s.kind = kind;
            s.taint = t;
            s.regionId = sr->id;
            s.siteIndex = static_cast<int>(r.sinks.size());
            s.srcLine = inst->srcLine();
            s.discharged = discharged;
            s.why = std::move(why);
            if (discharged)
                ++r.discharged;
            else
                ++r.leaks;
            r.sinks.push_back(std::move(s));
        };

        for (BasicBlock *bb : sr->blocks) {
            for (const auto &inst_p : bb->insts()) {
                const Instruction *inst = inst_p.get();
                std::vector<Taint> ops;
                ops.reserve(inst->numOperands());
                for (const Value *op : inst->operands())
                    ops.push_back(taintOf(op));

                // ---- Sinks: handler-visible effects. ----
                if (inst->op() == Opcode::Store) {
                    Taint at = ops[0];
                    if (at != Taint::Clean) {
                        KnownBits a = kb.known(inst->operand(0));
                        if (a.isConstant()) {
                            addSink(inst, TaintSinkKind::StoreAddr, at,
                                    true,
                                    "address provably constant " +
                                        boundsStr(a) +
                                        "; nothing is encoded (D1)");
                        } else if (at == Taint::Transient) {
                            addSink(inst, TaintSinkKind::StoreAddr, at,
                                    true,
                                    "store address is transient " +
                                        boundsStr(a) +
                                        ": committed-derivable; data "
                                        "squashed in the store queue "
                                        "before retire (D5)");
                        } else {
                            addSink(inst, TaintSinkKind::StoreAddr, at,
                                    false,
                                    "store address is secret " +
                                        boundsStr(a) +
                                        "; its write-allocate line "
                                        "fill encodes memory the "
                                        "committed path never reads");
                        }
                    }
                } else if (inst->op() == Opcode::Output) {
                    Taint vt = ops.empty() ? Taint::Clean : ops[0];
                    if (vt != Taint::Clean)
                        addSink(inst, TaintSinkKind::TaintedOut, vt,
                                false,
                                std::string("output of a ") +
                                    taintName(vt) +
                                    " value is observable before "
                                    "the check commits");
                } else if (inst->op() == Opcode::Load &&
                           ops[0] == Taint::Secret) {
                    KnownBits a = kb.known(inst->operand(0));
                    if (a.isConstant()) {
                        addSink(inst, TaintSinkKind::SecretLoad,
                                ops[0], true,
                                "address provably constant " +
                                    boundsStr(a) + " (D1)");
                    } else if (a.hi != ~0ULL &&
                               a.lo / kCacheLine ==
                                   a.hi / kCacheLine) {
                        addSink(inst, TaintSinkKind::SecretLoad,
                                ops[0], true,
                                "address range " + boundsStr(a) +
                                    " stays in one cache line; the "
                                    "observable set is secret-"
                                    "independent (D2)");
                    } else {
                        addSink(inst, TaintSinkKind::SecretLoad,
                                ops[0], false,
                                "load address derives from a secret "
                                    + boundsStr(a) +
                                    "; the cache set touched encodes "
                                    "memory the committed path never "
                                    "reads");
                    }
                }

                // ---- Transfer: result taint. ----
                Taint result;
                if (inst->op() == Opcode::Load) {
                    if (ops[0] == Taint::Clean) {
                        result = Taint::Clean;
                    } else {
                        // D4: an in-array transient read is
                        // declassified to Transient; a range that can
                        // escape every global stays Secret.
                        KnownBits a = kb.known(inst->operand(0));
                        result = staysInOneGlobal(a, m)
                                     ? Taint::Transient
                                     : Taint::Secret;
                    }
                } else {
                    result = taintTransfer(inst->op(), ops);
                }
                // Roots: a live speculative check's result is
                // transiently the wrapped slice value (D3 drops
                // proven-safe checks — no misspeculating path).
                if (inst->isSpeculative() && !proven_safe.count(inst))
                    result = taintJoin(result, Taint::Transient);

                if (result != Taint::Clean) {
                    env[inst] = result;
                    if (result == Taint::Secret)
                        ++r.secretDefs;
                    else
                        ++r.transientDefs;
                }
            }
        }

        // Write the tallies back into the region metadata the backend
        // threads into MIR (per-region leak attribution).
        sr->leakSites = static_cast<int>(r.leaks);
        sr->leaksDischarged = static_cast<int>(r.discharged);

        report.leakSites += r.leaks;
        report.dischargedSites += r.discharged;
        report.transientDefs += r.transientDefs;
        report.secretDefs += r.secretDefs;
        report.regions.push_back(std::move(r));
    }
    return report;
}

} // namespace bitspec
