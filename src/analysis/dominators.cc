#include "analysis/dominators.h"

#include "analysis/cfg.h"
#include "support/error.h"

namespace bitspec
{

DomTree::DomTree(Function &f)
{
    auto rpo = reversePostOrder(f);
    for (unsigned i = 0; i < rpo.size(); ++i)
        rpoIndex_[rpo[i]] = i;

    auto preds = f.predecessors();
    BasicBlock *entry = f.entry();
    idom_[entry] = entry;

    auto intersect = [&](BasicBlock *a, BasicBlock *b) {
        while (a != b) {
            while (rpoIndex_.at(a) > rpoIndex_.at(b))
                a = idom_.at(a);
            while (rpoIndex_.at(b) > rpoIndex_.at(a))
                b = idom_.at(b);
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BasicBlock *bb : rpo) {
            if (bb == entry)
                continue;
            BasicBlock *new_idom = nullptr;
            for (BasicBlock *p : preds[bb]) {
                if (!idom_.count(p))
                    continue; // Not yet processed / unreachable.
                new_idom = new_idom ? intersect(new_idom, p) : p;
            }
            if (!new_idom)
                continue;
            auto it = idom_.find(bb);
            if (it == idom_.end() || it->second != new_idom) {
                idom_[bb] = new_idom;
                changed = true;
            }
        }
    }
}

BasicBlock *
DomTree::idom(BasicBlock *bb) const
{
    auto it = idom_.find(bb);
    bsAssert(it != idom_.end(), "idom: unreachable block " + bb->name());
    return it->second;
}

bool
DomTree::dominates(BasicBlock *a, BasicBlock *b) const
{
    if (!isReachable(a) || !isReachable(b))
        return false;
    // Walk b's idom chain towards the entry.
    BasicBlock *cur = b;
    for (;;) {
        if (cur == a)
            return true;
        BasicBlock *up = idom_.at(cur);
        if (up == cur)
            return false; // Reached the entry.
        cur = up;
    }
}

bool
DomTree::dominatesUse(const Instruction *def, const Instruction *user,
                      size_t operand_index) const
{
    BasicBlock *def_bb = def->parent();
    if (user->isPhi()) {
        // Use happens at the end of the incoming block.
        BasicBlock *incoming = user->blockOperand(operand_index);
        return dominates(def_bb, incoming);
    }
    BasicBlock *use_bb = user->parent();
    if (def_bb != use_bb)
        return dominates(def_bb, use_bb);
    // Same block: def must come first.
    for (const auto &inst : def_bb->insts()) {
        if (inst.get() == def)
            return true;
        if (inst.get() == user)
            return false;
    }
    return false;
}

} // namespace bitspec
