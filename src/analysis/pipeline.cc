#include "analysis/pipeline.h"

#include <cstdio>

#include "analysis/lint.h"
#include "analysis/verifier.h"
#include "obs/trace.h"
#include "support/env.h"
#include "support/error.h"
#include "support/log.h"

namespace bitspec
{

namespace
{

int forced_ = -1;

bool
envEnabled()
{
    static const bool on = env::getBool("BITSPEC_VERIFY_EACH", false);
    return on;
}

void
reportUnsafe(const LintReport &report, const char *stage)
{
    for (const LintFinding &f : report.findings)
        if (f.verdict == LintVerdict::ProvenUnsafe ||
            f.verdict == LintVerdict::SpecLeak)
            log::warn("bitspec-lint [%s]: %s", stage,
                      f.message.c_str());
}

} // namespace

void
setPipelineVerifyForced(int forced)
{
    forced_ = forced;
}

bool
pipelineVerifyEnabled()
{
    if (forced_ >= 0)
        return forced_ != 0;
    return envEnabled();
}

void
pipelineCheckpoint(Module &m, const char *stage)
{
    if (!pipelineVerifyEnabled())
        return;
    trace::Span span("verify.checkpoint", "compile");
    span.arg("stage", stage);
    verifyOrDie(m, stage);
    reportUnsafe(lintModule(m), stage);
}

void
pipelineCheckpoint(Function &f, const char *stage)
{
    if (!pipelineVerifyEnabled())
        return;
    std::vector<std::string> problems = verifyFunction(f);
    if (!problems.empty()) {
        std::string msg = "IR verification failed (" +
                          std::string(stage) + ", function " +
                          f.name() + "):";
        for (const std::string &p : problems)
            msg += "\n  " + p;
        panic(msg);
    }
    reportUnsafe(lintFunction(f), stage);
}

} // namespace bitspec
