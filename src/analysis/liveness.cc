#include "analysis/liveness.h"

#include "analysis/cfg.h"

namespace bitspec
{

namespace
{

bool
isTracked(const Value *v)
{
    return v->isInstruction() || v->kind() == ValueKind::Argument;
}

} // namespace

Liveness::Liveness(Function &f, bool handler_edges)
{
    // Successor map including handler edges when requested.
    std::map<const BasicBlock *, std::vector<BasicBlock *>> succs;
    for (const auto &bb : f.blocks())
        succs[bb.get()] = bb->successors();
    if (handler_edges) {
        for (const auto &sr : f.specRegions())
            for (BasicBlock *member : sr->blocks)
                succs[member].push_back(sr->handler);
    }

    // use[b]: used before any def in b (phi uses attributed to the
    // incoming edge, i.e. to the predecessor's live-out).
    // def[b]: values defined in b.
    std::map<const BasicBlock *, std::set<const Value *>> use, def;
    // phiUse[pred] accumulates values consumed by successor phis.
    std::map<const BasicBlock *, std::set<const Value *>> phi_use;

    for (const auto &bb : f.blocks()) {
        auto &u = use[bb.get()];
        auto &d = def[bb.get()];
        for (const auto &inst : bb->insts()) {
            if (inst->isPhi()) {
                for (size_t i = 0; i < inst->numOperands(); ++i) {
                    Value *v = inst->operand(i);
                    if (isTracked(v))
                        phi_use[inst->blockOperand(i)].insert(v);
                }
            } else {
                for (Value *v : inst->operands())
                    if (isTracked(v) && !d.count(v))
                        u.insert(v);
            }
            if (!inst->type().isVoid())
                d.insert(inst.get());
        }
    }

    // Backward dataflow to a fixed point.
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = f.blocks().rbegin(); it != f.blocks().rend(); ++it) {
            const BasicBlock *bb = it->get();
            std::set<const Value *> out = phi_use[bb];
            for (BasicBlock *s : succs[bb])
                for (const Value *v : liveIn_[s])
                    out.insert(v);
            std::set<const Value *> in = use[bb];
            for (const Value *v : out)
                if (!def[bb].count(v))
                    in.insert(v);
            // Phi results are defined at the top of the block but their
            // "definition" already sits in def[bb]; phis themselves are
            // live-in only via other blocks.
            if (out != liveOut_[bb] || in != liveIn_[bb]) {
                liveOut_[bb] = std::move(out);
                liveIn_[bb] = std::move(in);
                changed = true;
            }
        }
    }
}

const std::set<const Value *> &
Liveness::liveIn(const BasicBlock *bb) const
{
    auto it = liveIn_.find(bb);
    return it == liveIn_.end() ? empty_ : it->second;
}

const std::set<const Value *> &
Liveness::liveOut(const BasicBlock *bb) const
{
    auto it = liveOut_.find(bb);
    return it == liveOut_.end() ? empty_ : it->second;
}

} // namespace bitspec
